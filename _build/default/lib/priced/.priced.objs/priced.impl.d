lib/priced/priced.ml: Cora Jobshop
