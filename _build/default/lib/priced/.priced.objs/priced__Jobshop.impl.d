lib/priced/jobshop.ml: Array Cora Discrete List Printf Ta
