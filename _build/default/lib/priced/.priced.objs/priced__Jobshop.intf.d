lib/priced/jobshop.mli: Discrete Ta
