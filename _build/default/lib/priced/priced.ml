(* Root module of the priced library: the CORA algorithms plus the
   job-shop case study. *)

include Cora
module Jobshop = Jobshop
