type t = int

(* Encoding: a finite bound [≺ m] is [2m + s] with s = 1 when weak (<=)
   and s = 0 when strict (<). [inf] is max_int. Integer order = weakness
   order, and [m = b asr 1] holds for negative constants too because
   [asr] floors. *)

let inf = max_int
let le m = (m lsl 1) lor 1
let lt m = m lsl 1
let le_zero = le 0
let lt_zero = lt 0
let is_inf b = b = inf

let constant b =
  if is_inf b then invalid_arg "Bound.constant: inf" else b asr 1

let is_strict b = (not (is_inf b)) && b land 1 = 0

let add a b =
  if is_inf a || is_inf b then inf
  else (((a asr 1) + (b asr 1)) lsl 1) lor (a land b land 1)

let negate b =
  if is_inf b then invalid_arg "Bound.negate: inf"
  else if is_strict b then le (-(constant b))
  else lt (-(constant b))

let compare = Int.compare
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b
let equal = Int.equal

let sat b d =
  if is_inf b then true
  else begin
    let m = float_of_int (constant b) in
    if is_strict b then d < m else d <= m
  end

let pp ppf b =
  if is_inf b then Format.pp_print_string ppf "inf"
  else Format.fprintf ppf "%s%d" (if is_strict b then "<" else "<=") (constant b)

let to_string b = Format.asprintf "%a" pp b
let to_int b = b
let of_int b = b
