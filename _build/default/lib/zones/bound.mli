(** Clock-difference bounds for DBMs.

    A bound represents a constraint [x - y < m] (strict) or [x - y <= m]
    (weak), or no constraint at all ([inf]). Bounds are encoded as plain
    integers — [2m] for strict, [2m + 1] for weak — so that the natural
    integer order coincides with constraint weakness: a numerically larger
    bound is a weaker constraint. This is the classic UPPAAL encoding
    (Bengtsson & Yi, "Timed Automata: Semantics, Algorithms and Tools"). *)

type t = private int

(** The absent constraint, weaker than every finite bound. *)
val inf : t

(** [le m] is the weak bound [<= m]. *)
val le : int -> t

(** [lt m] is the strict bound [< m]. *)
val lt : int -> t

(** [<= 0], the diagonal of every non-empty canonical DBM. *)
val le_zero : t

(** [lt_zero] is [< 0]; a diagonal entry below [le_zero] marks emptiness. *)
val lt_zero : t

val is_inf : t -> bool

(** [constant b] is the integer constant of a finite bound.
    @raise Invalid_argument on [inf]. *)
val constant : t -> int

(** [is_strict b] is true for [< m] bounds. [inf] is not strict. *)
val is_strict : t -> bool

(** [add a b] is the bound on [x - z] deduced from bounds on [x - y] and
    [y - z]: constants add, and the result is weak only when both inputs
    are weak. Adding [inf] yields [inf]. *)
val add : t -> t -> t

(** [negate b] is the complement constraint: the negation of [x - y ≺ m]
    is [y - x ≺' -m] with flipped strictness.
    @raise Invalid_argument on [inf]. *)
val negate : t -> t

(** Total order; larger means weaker. *)
val compare : t -> t -> int

val min : t -> t -> t
val max : t -> t -> t
val equal : t -> t -> bool

(** [sat b d] decides whether the real difference [d] satisfies the
    constraint denoted by [b]. *)
val sat : t -> float -> bool

(** [pp] prints e.g. ["<=3"], ["<-2"] or ["inf"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Unsafe embedding used by serialization; [of_int (to_int b) = b]. *)
val to_int : t -> int

val of_int : int -> t
