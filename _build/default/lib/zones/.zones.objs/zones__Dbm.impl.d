lib/zones/dbm.ml: Array Bound Format Hashtbl Printf Random String
