lib/zones/dbm.mli: Bound Format Random
