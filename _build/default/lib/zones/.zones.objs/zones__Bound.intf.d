lib/zones/bound.mli: Format
