lib/zones/fed.ml: Bound Dbm Format List
