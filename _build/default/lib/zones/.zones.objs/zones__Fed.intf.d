lib/zones/fed.mli: Dbm Format
