lib/zones/bound.ml: Format Int
