(** Federations: finite unions of DBMs over a common set of clocks.

    Federations make the zone algebra closed under complement, which the
    symbolic deadlock check of the UPPAAL layer needs (a state deadlocks
    when its zone is {e not} covered by the union of time-predecessors of
    enabled edges). Subtraction is exact and produces disjoint pieces. *)

type t

(** [of_dbm z] is the singleton federation [{z}] (empty if [z] is). *)
val of_dbm : Dbm.t -> t

(** [empty ~clocks] is the empty federation. *)
val empty : clocks:int -> t

val is_empty : t -> bool
val clocks : t -> int

(** The member zones; all non-empty and pairwise over the same clocks. *)
val dbms : t -> Dbm.t list

(** [add f z] is [f ∪ {z}]. *)
val add : t -> Dbm.t -> t

(** [union f1 f2]. *)
val union : t -> t -> t

(** [inter f1 f2] intersects member-wise (may square the member count). *)
val inter : t -> t -> t

(** [inter_dbm f z] restricts every member to zone [z]. *)
val inter_dbm : t -> Dbm.t -> t

(** [diff f1 f2] is the exact set difference. *)
val diff : t -> t -> t

(** [subtract_dbm z1 z2] is the set difference [z1 \ z2] as a federation of
    pairwise-disjoint zones. *)
val subtract_dbm : Dbm.t -> Dbm.t -> t

(** [subtract f z] removes zone [z] from every member. *)
val subtract : t -> Dbm.t -> t

(** [dbm_subset z f] decides [z ⊆ ⋃ f] exactly. *)
val dbm_subset : Dbm.t -> t -> bool

(** [mem f v] decides membership of a valuation. *)
val mem : t -> float array -> bool

(** Total number of member zones. *)
val size : t -> int

val pp : ?names:string array -> Format.formatter -> t -> unit
