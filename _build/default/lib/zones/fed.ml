type t = { n_clocks : int; members : Dbm.t list }

(* Invariant: members are all non-empty DBMs over [n_clocks] clocks. *)

let empty ~clocks = { n_clocks = clocks; members = [] }

let of_dbm z =
  let f = empty ~clocks:(Dbm.clocks z) in
  if Dbm.is_empty z then f else { f with members = [ z ] }

let is_empty f = f.members = []
let clocks f = f.n_clocks
let dbms f = f.members

let add f z =
  assert (Dbm.clocks z = f.n_clocks);
  if Dbm.is_empty z then f else { f with members = z :: f.members }

let union f1 f2 =
  assert (f1.n_clocks = f2.n_clocks);
  { f1 with members = f1.members @ f2.members }

let inter_dbm f z =
  let members =
    List.filter_map
      (fun m ->
        let i = Dbm.intersect m z in
        if Dbm.is_empty i then None else Some i)
      f.members
  in
  { f with members }

let inter f1 f2 =
  assert (f1.n_clocks = f2.n_clocks);
  let pieces =
    List.concat_map (fun m -> (inter_dbm f1 m).members) f2.members
  in
  { f1 with members = pieces }

(* z1 \ z2: walk the finite constraints of z2; at each, split off the part
   of the remainder violating that constraint. The pieces are disjoint by
   construction and their union is exactly z1 \ z2. *)
let subtract_dbm z1 z2 =
  let n = Dbm.clocks z1 in
  assert (Dbm.clocks z2 = n);
  if Dbm.is_empty z1 then empty ~clocks:n
  else if Dbm.is_empty z2 then of_dbm z1
  else begin
    let dim = n + 1 in
    let pieces = ref [] in
    let remainder = ref z1 in
    (try
       for i = 0 to dim - 1 do
         for j = 0 to dim - 1 do
           if i <> j then begin
             let b = Dbm.get z2 i j in
             if not (Bound.is_inf b) then begin
               (* Part of the remainder violating x_i - x_j ≺ m, i.e.
                  satisfying x_j - x_i ≺' -m. *)
               let outside = Dbm.constrain !remainder j i (Bound.negate b) in
               if not (Dbm.is_empty outside) then pieces := outside :: !pieces;
               remainder := Dbm.constrain !remainder i j b;
               if Dbm.is_empty !remainder then raise Exit
             end
           end
         done
       done
     with Exit -> ());
    (* Whatever remains satisfies every constraint of z2, hence lies in z2
       and is dropped. *)
    { n_clocks = n; members = !pieces }
  end

let subtract f z =
  assert (Dbm.clocks z = f.n_clocks);
  let cut acc member = union acc (subtract_dbm member z) in
  List.fold_left cut (empty ~clocks:f.n_clocks) f.members

let diff f1 f2 =
  List.fold_left subtract f1 f2.members

let dbm_subset z f =
  let remove remaining member =
    List.concat_map (fun piece -> (subtract_dbm piece member).members) remaining
  in
  let leftovers = List.fold_left remove (of_dbm z).members f.members in
  leftovers = []

let mem f v = List.exists (fun z -> Dbm.satisfies z v) f.members
let size f = List.length f.members

let pp ?names ppf f =
  match f.members with
  | [] -> Format.pp_print_string ppf "false"
  | members ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
      (fun ppf z -> Format.fprintf ppf "(%a)" (Dbm.pp ?names) z)
      ppf members
