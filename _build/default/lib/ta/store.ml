type var = { off : int; len : int; var_name : string }

type builder = {
  mutable next : int;
  mutable decls : (var * int) list; (* with initial value, reversed *)
  mutable frozen : bool;
}

type layout = { total : int; all_vars : var list; inits : int array }

let create () = { next = 0; decls = []; frozen = false }

let declare b ~len ~init name =
  if b.frozen then invalid_arg "Store: builder already frozen";
  if List.exists (fun (v, _) -> String.equal v.var_name name) b.decls then
    invalid_arg (Printf.sprintf "Store: duplicate variable %S" name);
  let v = { off = b.next; len; var_name = name } in
  b.next <- b.next + len;
  b.decls <- (v, init) :: b.decls;
  v

let int_var b ?(init = 0) name = declare b ~len:1 ~init name

let array_var b ?(init = 0) name length =
  if length <= 0 then invalid_arg "Store.array_var: length must be positive";
  declare b ~len:length ~init name

let freeze b =
  b.frozen <- true;
  let inits = Array.make b.next 0 in
  let decls = List.rev b.decls in
  List.iter
    (fun (v, init) ->
      for k = v.off to v.off + v.len - 1 do
        inits.(k) <- init
      done)
    decls;
  { total = b.next; all_vars = List.map fst decls; inits }

let size l = l.total
let initial l = Array.copy l.inits
let vars l = l.all_vars

let find l name =
  List.find (fun v -> String.equal v.var_name name) l.all_vars

let pp_store l ppf store =
  let pp_var ppf v =
    if v.len = 1 then Format.fprintf ppf "%s=%d" v.var_name store.(v.off)
    else begin
      let cells =
        List.init v.len (fun k -> string_of_int store.(v.off + k))
      in
      Format.fprintf ppf "%s=[%s]" v.var_name (String.concat ";" cells)
    end
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    pp_var ppf l.all_vars
