(** Integer/boolean expressions over a variable store.

    This is the data layer of the modeling languages (UPPAAL's C-like
    subset, MODEST expressions, BIP guards). Booleans are encoded as
    integers with 0 = false. Array accesses are bounds-checked at
    evaluation time. *)

(** Assignable places: a scalar, or an array cell with computed index. *)
type lvalue = Cell of Store.var | Elem of Store.var * t

(** Expression syntax. [Read] dereferences an lvalue. *)
and t =
  | Int of int
  | Read of lvalue
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Eq of t * t
  | Neq of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Ite of t * t * t

exception Eval_error of string

(** [var v] reads scalar [v]. *)
val var : Store.var -> t

(** [index v e] reads array cell [v[e]]. *)
val index : Store.var -> t -> t

(** [eval store e] evaluates to an integer.
    @raise Eval_error on out-of-bounds access or division by zero. *)
val eval : int array -> t -> int

(** [eval_bool store e] is [eval store e <> 0]. *)
val eval_bool : int array -> t -> bool

(** [lvalue_offset store lv] resolves the store index of an lvalue.
    @raise Eval_error when the index falls outside the array. *)
val lvalue_offset : int array -> lvalue -> int

(** [subst_vars f e] replaces every variable handle via [f] (used when
    merging store layouts, e.g. network composition). *)
val subst_vars : (Store.var -> Store.var) -> t -> t

(** [subst_lvalue f lv]. *)
val subst_lvalue : (Store.var -> Store.var) -> lvalue -> lvalue

val pp : Format.formatter -> t -> unit
val to_string : t -> string
