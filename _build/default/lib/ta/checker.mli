(** The symbolic model checker (UPPAAL's verification engine).

    Supports the query patterns of the paper's Section II: safety
    ([A[] f]), reachability ([E<> f]), liveness ([f --> g], [A<> f]) and
    deadlock-freedom, over the zone graph with inclusion subsumption
    (except for liveness, which needs the exact graph). The deadlock test
    is exact, using federation subtraction: a valuation deadlocks when no
    delay can ever enable another move. *)

type stats = {
  visited : int;  (** symbolic states popped from the waiting list *)
  stored : int;  (** symbolic states kept in the passed list *)
}

type result = {
  holds : bool;
  trace : string list option;
      (** for violated safety / satisfied reachability: the labels of a
          witness run from the initial state *)
  stats : stats;
}

(** [check net q] verifies query [q]. [subsumption] (default true) turns
    inclusion checking on the passed list on/off (ablation switch); it is
    ignored for liveness queries, which always use the exact graph.
    [rich_trace] (default false) annotates every witness step with the
    symbolic state it reaches. [max_states] (default 1_000_000) aborts
    pathological explorations.
    @raise Failure if the exploration exceeds [max_states]. *)
val check :
  ?subsumption:bool ->
  ?max_states:int ->
  ?rich_trace:bool ->
  Model.network ->
  Prop.query ->
  result

(** [deadlocked net st] — does some valuation of [st] admit no future
    action, ever? Exposed for tests. *)
val deadlocked : Model.network -> Zone_graph.state -> bool

(** [reachable_states net] enumerates the full symbolic state space (with
    subsumption); used by tests and by cross-validation against the
    digital-clocks engine. *)
val reachable_states :
  ?subsumption:bool ->
  ?max_states:int ->
  Model.network ->
  Zone_graph.state list
