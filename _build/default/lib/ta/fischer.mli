(** Fischer's mutual-exclusion protocol — the classic timing-based UPPAAL
    benchmark, exercising strict clock guards and shared variables.

    Each process loops idle → request → wait → critical section. A shared
    variable [id] holds the current claimant; correctness hinges on the
    timing discipline: a process writes [id] within [k] time units of
    requesting and must then wait {e strictly more} than [k] before
    checking [id] again. With [strict_wait:false] the wait uses [>= k]
    instead — the textbook bug that breaks mutual exclusion. *)

(** [make ~n ~k ()] builds the protocol for [n] processes with timing
    constant [k] (default 2). [strict_wait] defaults to true. *)
val make : ?strict_wait:bool -> ?k:int -> n:int -> unit -> Model.network

(** Mutual exclusion: never two processes in [cs]. *)
val mutex : Model.network -> Prop.query

(** Some process can reach the critical section. *)
val cs_reachable : Model.network -> Prop.query

(** [A[] not deadlock]. *)
val no_deadlock : Prop.query
