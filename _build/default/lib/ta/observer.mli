(** Observer-clock model transformations.

    UPPAAL answers time-bounded queries like [E<> (phi && time <= T)] by
    adding a never-reset observer clock. {!add_global_clock} rebuilds a
    network with one extra clock that no edge touches; {!possibly_within}
    and {!invariant_until} wrap the pattern. *)

(** [add_global_clock net] — a semantically identical network with one
    fresh clock (returned index) measuring global elapsed time. *)
val add_global_clock : Model.network -> Model.network * Model.clock

(** [possibly_within net f ~bound] — can [f] hold within [bound] time
    units of the start? ([E<> (f && t <= bound)].) *)
val possibly_within : Model.network -> Prop.formula -> bound:int -> Checker.result

(** [invariant_until net f ~bound] — does [f] hold in every state
    reachable within [bound] time units? *)
val invariant_until : Model.network -> Prop.formula -> bound:int -> Checker.result
