(** Discrete variable stores for the model data layer.

    A network's data state is a flat [int array]; a {!layout} maps named
    scalar and array variables to regions of that array. Layouts are built
    once with a {!builder} and then frozen. This mirrors UPPAAL's bounded
    integer variables and arrays (Fig. 1(c) of the paper). *)

(** Handle to a declared variable: a region of the store. *)
type var = private { off : int; len : int; var_name : string }

type builder
type layout

(** [create ()] is a fresh, empty layout builder. *)
val create : unit -> builder

(** [int_var b ?init name] declares a scalar initialized to [init]
    (default 0). *)
val int_var : builder -> ?init:int -> string -> var

(** [array_var b ?init name length] declares an array of [length] cells,
    all initialized to [init] (default 0). *)
val array_var : builder -> ?init:int -> string -> int -> var

(** [freeze b] finalizes the layout. The builder must not be reused. *)
val freeze : builder -> layout

(** [size l] is the total number of cells. *)
val size : layout -> int

(** [initial l] is a fresh store holding every variable's initial value. *)
val initial : layout -> int array

(** [vars l] lists declared variables in declaration order. *)
val vars : layout -> var list

(** [find l name] looks up a variable.
    @raise Not_found if absent. *)
val find : layout -> string -> var

(** [pp_store l ppf store] prints ["name=v"] bindings for debugging. *)
val pp_store : layout -> Format.formatter -> int array -> unit
