(** Graphviz rendering of networks — one cluster per automaton, edges
    labelled with guard / synchronisation / updates (the visual companion
    of the UPPAAL GUI's editor view). *)

(** [of_network net] is a [digraph] in dot syntax. *)
val of_network : Model.network -> string
