(* Fischer's protocol; see fischer.mli. Process ids are 1-based in the
   shared variable so 0 means "free". *)

let make ?(strict_wait = true) ?(k = 2) ~n () =
  assert (n >= 1 && k >= 1);
  let b = Model.builder () in
  let sb = Model.store b in
  let id = Store.int_var sb "id" in
  for pid = 1 to n do
    let x = Model.fresh_clock b (Printf.sprintf "x%d" pid) in
    let p = Model.automaton b (Printf.sprintf "P%d" pid) in
    let idle = Model.location p "idle" in
    let req = Model.location p "req" ~invariant:[ Model.clock_le x k ] in
    let wait = Model.location p "wait" in
    let cs = Model.location p "cs" in
    Model.set_initial p idle;
    (* idle: observe the lock free, start requesting. *)
    Model.edge p ~src:idle ~dst:req
      ~guard:(Expr.Eq (Expr.var id, Expr.Int 0))
      ~updates:[ Model.Reset (x, 0) ] ();
    (* req: claim within k time units. *)
    Model.edge p ~src:req ~dst:wait
      ~clock_guard:[ Model.clock_le x k ]
      ~updates:
        [ Model.Assign (Expr.Cell id, Expr.Int pid); Model.Reset (x, 0) ]
      ();
    (* wait: after (strictly) more than k, enter if still the claimant. *)
    let wait_guard =
      if strict_wait then Model.clock_gt x k else Model.clock_ge x k
    in
    Model.edge p ~src:wait ~dst:cs
      ~guard:(Expr.Eq (Expr.var id, Expr.Int pid))
      ~clock_guard:[ wait_guard ] ();
    (* wait: somebody else claimed; retry once the lock is free. *)
    Model.edge p ~src:wait ~dst:req
      ~guard:(Expr.Eq (Expr.var id, Expr.Int 0))
      ~updates:[ Model.Reset (x, 0) ] ();
    (* cs: leave and release. *)
    Model.edge p ~src:cs ~dst:idle
      ~updates:[ Model.Assign (Expr.Cell id, Expr.Int 0) ] ()
  done;
  Model.build b

let mutex net =
  let n = Array.length net.Model.automata in
  let conj = ref Prop.True in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      conj :=
        Prop.And
          ( !conj,
            Prop.Not
              (Prop.And
                 ( Prop.Loc (i, Model.loc_index net i "cs"),
                   Prop.Loc (j, Model.loc_index net j "cs") )) )
    done
  done;
  Prop.Invariant !conj

let cs_reachable net = Prop.Possibly (Prop.Loc (0, Model.loc_index net 0 "cs"))
let no_deadlock = Prop.NoDeadlock
