lib/ta/observer.mli: Checker Model Prop
