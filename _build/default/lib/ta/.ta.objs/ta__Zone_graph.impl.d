lib/ta/zone_graph.ml: Array Expr Format Hashtbl List Model Printf Store String Zones
