lib/ta/model.ml: Array Expr Format Hashtbl List Option Printf Store String Zones
