lib/ta/store.mli: Format
