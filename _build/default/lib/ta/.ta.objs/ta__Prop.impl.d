lib/ta/prop.ml: Array Expr Format Model Zone_graph Zones
