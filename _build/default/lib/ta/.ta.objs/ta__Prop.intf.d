lib/ta/prop.mli: Expr Format Model Zone_graph Zones
