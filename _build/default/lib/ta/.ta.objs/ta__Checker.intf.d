lib/ta/checker.mli: Model Prop Zone_graph
