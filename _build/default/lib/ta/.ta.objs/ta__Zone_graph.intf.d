lib/ta/zone_graph.mli: Format Model Zones
