lib/ta/expr.ml: Array Format Printf Store
