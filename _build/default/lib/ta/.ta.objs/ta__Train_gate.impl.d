lib/ta/train_gate.ml: Array Expr Model Printf Prop Store
