lib/ta/dot.ml: Array Buffer Expr Format List Model Printf Store String Zones
