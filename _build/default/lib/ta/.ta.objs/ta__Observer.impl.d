lib/ta/observer.ml: Array Checker Model Prop
