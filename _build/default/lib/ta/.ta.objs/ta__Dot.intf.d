lib/ta/dot.mli: Model
