lib/ta/fischer.ml: Array Expr Model Printf Prop Store
