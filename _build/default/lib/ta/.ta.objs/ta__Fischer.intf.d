lib/ta/fischer.mli: Model Prop
