lib/ta/store.ml: Array Format List Printf String
