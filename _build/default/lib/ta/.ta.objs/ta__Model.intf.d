lib/ta/model.mli: Expr Format Store Zones
