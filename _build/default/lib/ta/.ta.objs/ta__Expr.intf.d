lib/ta/expr.mli: Format Store
