lib/ta/checker.ml: Array Format Hashtbl List Model Prop Queue Zone_graph Zones
