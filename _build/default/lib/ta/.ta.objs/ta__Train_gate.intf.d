lib/ta/train_gate.mli: Model Prop
