(* The classic UPPAAL train-gate demo, exactly as sketched in Fig. 1 of
   the paper: see train_gate.mli. *)

let make ~n_trains =
  assert (n_trains >= 1);
  let b = Model.builder () in
  let appr = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "appr%d" i)) in
  let stop = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "stop%d" i)) in
  (* [go] is an urgent channel in the classic demo: the gate restarts the
     front train without letting time pass, which the liveness property
     (Appr --> Cross) depends on. *)
  let go =
    Array.init n_trains (fun i ->
        Model.channel b ~urgent:true (Printf.sprintf "go%d" i))
  in
  let leave = Array.init n_trains (fun i -> Model.channel b (Printf.sprintf "leave%d" i)) in
  let sb = Model.store b in
  let list = Store.array_var sb "list" (n_trains + 1) in
  let len = Store.int_var sb "len" in
  (* Trains: one clock each. *)
  for i = 0 to n_trains - 1 do
    let x = Model.fresh_clock b (Printf.sprintf "x%d" i) in
    let a = Model.automaton b (Printf.sprintf "Train%d" i) in
    let safe = Model.location a "Safe" in
    let appr_l =
      Model.location a "Appr" ~invariant:[ Model.clock_le x 20 ]
    in
    let stop_l = Model.location a "Stop" in
    let start_l =
      Model.location a "Start" ~invariant:[ Model.clock_le x 15 ]
    in
    let cross_l =
      Model.location a "Cross" ~invariant:[ Model.clock_le x 5 ]
    in
    Model.set_initial a safe;
    Model.edge a ~src:safe ~dst:appr_l ~sync:(Model.Emit appr.(i))
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.edge a ~src:appr_l ~dst:stop_l
      ~clock_guard:[ Model.clock_le x 10 ]
      ~sync:(Model.Receive stop.(i)) ();
    Model.edge a ~src:appr_l ~dst:cross_l
      ~clock_guard:[ Model.clock_ge x 10 ]
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.edge a ~src:stop_l ~dst:start_l ~sync:(Model.Receive go.(i))
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.edge a ~src:start_l ~dst:cross_l
      ~clock_guard:[ Model.clock_ge x 7 ]
      ~updates:[ Model.Reset (x, 0) ] ();
    Model.edge a ~src:cross_l ~dst:safe
      ~clock_guard:[ Model.clock_ge x 3 ]
      ~sync:(Model.Emit leave.(i)) ()
  done;
  (* Gate controller with the Fig. 1(c) FIFO code. *)
  let g = Model.automaton b "Gate" in
  let free = Model.location g "Free" in
  let occ = Model.location g "Occ" in
  let stopping = Model.location g "Stopping" ~kind:Model.Committed in
  Model.set_initial g free;
  let front = Expr.index list (Expr.Int 0) in
  let tail = Expr.index list (Expr.Sub (Expr.var len, Expr.Int 1)) in
  let enqueue e =
    [
      Model.Assign (Expr.Elem (list, Expr.var len), Expr.Int e);
      Model.Assign (Expr.Cell len, Expr.Add (Expr.var len, Expr.Int 1));
    ]
  in
  (* dequeue(): shift the queue left — the while loop of Fig. 1(c), as a
     registered primitive. *)
  let dequeue =
    Model.Prim
      ( "dequeue",
        fun store ->
          let l = store.(len.Store.off) - 1 in
          store.(len.Store.off) <- l;
          for k = 0 to l - 1 do
            store.(list.Store.off + k) <- store.(list.Store.off + k + 1)
          done;
          store.(list.Store.off + l) <- 0 )
  in
  for e = 0 to n_trains - 1 do
    (* Free --appr[e]? when len == 0--> Occ, enqueue(e). With stopped
       trains still queued the gate must restart the front train first
       (the [len == 0] / [len > 0] guards of Fig. 1(b)). *)
    Model.edge g ~src:free ~dst:occ
      ~guard:(Expr.Eq (Expr.var len, Expr.Int 0))
      ~sync:(Model.Receive appr.(e))
      ~updates:(enqueue e) ();
    (* Free --go[front()]!--> Occ when len > 0. *)
    Model.edge g ~src:free ~dst:occ
      ~guard:
        (Expr.And (Expr.Gt (Expr.var len, Expr.Int 0), Expr.Eq (front, Expr.Int e)))
      ~sync:(Model.Emit go.(e)) ();
    (* Occ --leave[e]?--> Free when e == front(), dequeue(). *)
    Model.edge g ~src:occ ~dst:free
      ~guard:(Expr.Eq (front, Expr.Int e))
      ~sync:(Model.Receive leave.(e))
      ~updates:[ dequeue ] ();
    (* Occ --appr[e]?--> Stopping, enqueue(e). *)
    Model.edge g ~src:occ ~dst:stopping ~sync:(Model.Receive appr.(e))
      ~updates:(enqueue e) ();
    (* Stopping --stop[tail()]!--> Occ (committed, fires immediately). *)
    Model.edge g ~src:stopping ~dst:occ
      ~guard:(Expr.Eq (tail, Expr.Int e))
      ~sync:(Model.Emit stop.(e)) ()
  done;
  Model.build b

let n_trains net = Array.length net.Model.automata - 1

let cross_formula net i =
  Prop.loc net (Printf.sprintf "Train%d" i) "Cross"

let safety net =
  let n = n_trains net in
  let conj = ref Prop.True in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      conj :=
        Prop.And
          ( !conj,
            Prop.Not (Prop.And (cross_formula net i, cross_formula net j)) )
    done
  done;
  Prop.Invariant !conj

let liveness net i =
  Prop.LeadsTo
    (Prop.loc net (Printf.sprintf "Train%d" i) "Appr", cross_formula net i)

let no_deadlock = Prop.NoDeadlock

let clock_of_train net i =
  assert (i >= 0 && i < n_trains net);
  i + 1
