(** The train-gate case study of the paper (Fig. 1).

    [N] trains approach a one-track bridge; a gate controller keeps a FIFO
    queue of stopped trains, implemented with the array-and-length code of
    Fig. 1(c). Channel arrays [appr[id]], [stop[id]], [go[id]] and
    [leave[id]] are desugared into one binary channel per train. *)

(** [make ~n_trains] builds the network: automata [Train0..Train(n-1)]
    followed by [Gate]. *)
val make : n_trains:int -> Model.network

(** Number of trains of a network built by {!make}. *)
val n_trains : Model.network -> int

(** The paper's safety query: at most one train crosses at a time. *)
val safety : Model.network -> Prop.query

(** The paper's liveness query for train [i]:
    [Train(i).Appr --> Train(i).Cross]. *)
val liveness : Model.network -> int -> Prop.query

(** [A[] not deadlock]. *)
val no_deadlock : Prop.query

(** [cross_formula net i] is the state formula [Train(i).Cross], used by
    the SMC experiment (Fig. 4). *)
val cross_formula : Model.network -> int -> Prop.formula

(** [clock_of_train net i] is the clock index of train [i] (trains are
    declared in order, one clock each). *)
val clock_of_train : Model.network -> int -> Model.clock
