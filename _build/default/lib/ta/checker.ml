module Dbm = Zones.Dbm
module Fed = Zones.Fed
module Bound = Zones.Bound

type stats = { visited : int; stored : int }
type result = { holds : bool; trace : string list option; stats : stats }

(* ------------------------------------------------------------------ *)
(* Passed/waiting exploration with optional inclusion subsumption       *)
(* ------------------------------------------------------------------ *)

type node = {
  st : Zone_graph.state;
  parent : int; (* -1 for the initial node *)
  label : string;
}

(* Insert [zone] into the passed list for its discrete key. Returns false
   when an already-stored zone subsumes it. With subsumption on, stored
   zones that the new one strictly contains are dropped. *)
let insert_passed ~subsumption passed key zone =
  let existing = try Hashtbl.find passed key with Not_found -> [] in
  if subsumption then begin
    if List.exists (fun z -> Dbm.subset zone z) existing then false
    else begin
      let kept = List.filter (fun z -> not (Dbm.subset z zone)) existing in
      Hashtbl.replace passed key (zone :: kept);
      true
    end
  end
  else if List.exists (fun z -> Dbm.equal zone z) existing then false
  else begin
    Hashtbl.replace passed key (zone :: existing);
    true
  end

(* Generic breadth-first exploration. [on_state] is called once per fresh
   symbolic state and may short-circuit by returning a payload. With
   [rich_trace], witness steps carry the symbolic state they reach. *)
let explore ?(subsumption = true) ?(max_states = 1_000_000)
    ?(rich_trace = false) net ~ks ~on_state =
  let passed = Hashtbl.create 4096 in
  let nodes : node array ref = ref [||] in
  let n_nodes = ref 0 in
  let push node =
    if !n_nodes = Array.length !nodes then begin
      let fresh = Array.make (max 256 (2 * !n_nodes)) node in
      Array.blit !nodes 0 fresh 0 !n_nodes;
      nodes := fresh
    end;
    !nodes.(!n_nodes) <- node;
    incr n_nodes;
    !n_nodes - 1
  in
  let trace_to id =
    let render (n : node) =
      if rich_trace then
        Format.asprintf "%s  @@ %a" n.label (Zone_graph.pp_state net) n.st
      else n.label
    in
    let rec walk id acc =
      if id < 0 then acc
      else begin
        let n = !nodes.(id) in
        walk n.parent (if n.parent < 0 then acc else render n :: acc)
      end
    in
    walk id []
  in
  let queue = Queue.create () in
  let visited = ref 0 in
  let init = Zone_graph.initial net ~ks in
  ignore
    (insert_passed ~subsumption passed (Zone_graph.discrete_key init) init.zone);
  Queue.push (push { st = init; parent = -1; label = "init" }) queue;
  let outcome = ref None in
  while !outcome = None && not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let node = !nodes.(id) in
    incr visited;
    if !visited > max_states then
      failwith "Checker: state limit exceeded (model too large or diverging)";
    (match on_state node.st with
     | Some payload -> outcome := Some (payload, trace_to id)
     | None ->
       List.iter
         (fun (label, st') ->
           let key = Zone_graph.discrete_key st' in
           if insert_passed ~subsumption passed key st'.Zone_graph.zone then
             Queue.push (push { st = st'; parent = id; label }) queue)
         (Zone_graph.successors net ~ks node.st))
  done;
  let stored = Hashtbl.fold (fun _ zs acc -> acc + List.length zs) passed 0 in
  (!outcome, { visited = !visited; stored })

(* ------------------------------------------------------------------ *)
(* Deadlock                                                             *)
(* ------------------------------------------------------------------ *)

let deadlocked net (st : Zone_graph.state) =
  let delay = Zone_graph.delay_allowed net st.locs st.store in
  let escapes =
    List.filter_map
      (fun mv ->
        let g = Zone_graph.move_enabling_zone net st.locs st.store mv in
        if Dbm.is_empty g then None
        else begin
          let g = if delay then Dbm.down g else g in
          let e = Dbm.intersect st.zone g in
          if Dbm.is_empty e then None else Some e
        end)
      (Zone_graph.moves net st.locs st.store)
  in
  let fed =
    List.fold_left Fed.add (Fed.empty ~clocks:net.Model.n_clocks) escapes
  in
  not (Fed.dbm_subset st.zone fed)

(* ------------------------------------------------------------------ *)
(* Exact graph for liveness                                             *)
(* ------------------------------------------------------------------ *)

type graph = {
  states : Zone_graph.state array;
  succs : int list array;
  parents : (int * string) array; (* for diagnostic traces *)
}

let build_graph ?(max_states = 1_000_000) net ~ks =
  let table = Hashtbl.create 4096 in
  (* discrete key -> (zone, id) list, exact equality *)
  let states = ref [] and n = ref 0 in
  let succs = Hashtbl.create 4096 in
  let parents = Hashtbl.create 4096 in
  let id_of st =
    let key = Zone_graph.discrete_key st in
    let entries = try Hashtbl.find table key with Not_found -> [] in
    match
      List.find_opt (fun (z, _) -> Dbm.equal z st.Zone_graph.zone) entries
    with
    | Some (_, id) -> (id, false)
    | None ->
      let id = !n in
      incr n;
      if !n > max_states then
        failwith "Checker: state limit exceeded during liveness exploration";
      Hashtbl.replace table key ((st.Zone_graph.zone, id) :: entries);
      states := st :: !states;
      (id, true)
  in
  let queue = Queue.create () in
  let init = Zone_graph.initial net ~ks in
  let init_id, _ = id_of init in
  Hashtbl.replace parents init_id (-1, "init");
  Queue.push (init_id, init) queue;
  while not (Queue.is_empty queue) do
    let id, st = Queue.pop queue in
    let kids =
      List.map
        (fun (label, st') ->
          let id', fresh = id_of st' in
          if fresh then begin
            Hashtbl.replace parents id' (id, label);
            Queue.push (id', st') queue
          end;
          id')
        (Zone_graph.successors net ~ks st)
    in
    Hashtbl.replace succs id kids
  done;
  let states_arr = Array.of_list (List.rev !states) in
  let succs_arr =
    Array.init !n (fun i -> try Hashtbl.find succs i with Not_found -> [])
  in
  let parents_arr =
    Array.init !n (fun i -> try Hashtbl.find parents i with Not_found -> (-1, "?"))
  in
  { states = states_arr; succs = succs_arr; parents = parents_arr }

(* A discrete node can let time diverge iff delay is allowed at all (no
   committed/urgent location, no enabled urgent synchronisation) and no
   location invariant puts a finite upper bound on a clock. *)
let can_idle_forever net (st : Zone_graph.state) =
  Zone_graph.delay_allowed net st.locs st.store
  && not
       (List.exists
          (fun (c : Model.constr) ->
            c.ci > 0 && c.cj = 0 && not (Bound.is_inf c.cb))
          (Zone_graph.invariant_constrs net st.locs))

(* All paths from every [start] node eventually reach a [q]-node: fails on
   a cycle within the not-q subgraph, a timelocked sink, or a node that can
   idle forever before q. Returns the id of a failing node, if any. *)
let all_paths_reach graph net ~is_q starts =
  let n = Array.length graph.states in
  let status = Array.make n `White in
  (* `White unvisited; `Gray on stack; `Good / `Bad settled. *)
  let rec verify id =
    match status.(id) with
    | `Good -> true
    | `Bad -> false
    | `Gray -> false (* cycle avoiding q *)
    | `White ->
      if is_q id then begin
        status.(id) <- `Good;
        true
      end
      else begin
        status.(id) <- `Gray;
        let st = graph.states.(id) in
        let ok =
          (not (can_idle_forever net st))
          && graph.succs.(id) <> []
          && List.for_all verify graph.succs.(id)
        in
        status.(id) <- (if ok then `Good else `Bad);
        ok
      end
  in
  List.find_opt (fun id -> not (verify id)) starts

let trace_in_graph graph id =
  let rec walk id acc =
    if id < 0 then acc
    else begin
      let parent, label = graph.parents.(id) in
      walk parent (if parent < 0 then acc else label :: acc)
    end
  in
  walk id []

(* ------------------------------------------------------------------ *)
(* Top-level check                                                      *)
(* ------------------------------------------------------------------ *)

let check_reach ?subsumption ?max_states ?rich_trace net f =
  let ks = Prop.merge_constants net f in
  let on_state st = if Prop.holds_somewhere net st f then Some () else None in
  explore ?subsumption ?max_states ?rich_trace net ~ks ~on_state

let check_liveness ?max_states ?(from_initial_only = false) net ~p ~q =
  if not (Prop.crisp p && Prop.crisp q) then
    invalid_arg "Checker: leads-to operands must not contain clock atoms";
  let ks = Array.copy net.Model.max_consts in
  let graph = build_graph ?max_states net ~ks in
  let is_q id = Prop.eval_crisp net graph.states.(id) q in
  let starts = ref [] in
  if from_initial_only then begin
    (* A<> q: only runs from the initial state (node 0) matter. *)
    if not (is_q 0) then starts := [ 0 ]
  end
  else
    Array.iteri
      (fun id st ->
        if Prop.eval_crisp net st p && not (is_q id) then
          starts := id :: !starts)
      graph.states;
  let failing = all_paths_reach graph net ~is_q (List.rev !starts) in
  let stats = { visited = Array.length graph.states; stored = Array.length graph.states } in
  match failing with
  | None -> { holds = true; trace = None; stats }
  | Some id -> { holds = false; trace = Some (trace_in_graph graph id); stats }

let check ?subsumption ?max_states ?rich_trace net query =
  match query with
  | Prop.Possibly f ->
    let outcome, stats = check_reach ?subsumption ?max_states ?rich_trace net f in
    (match outcome with
     | Some ((), trace) -> { holds = true; trace = Some trace; stats }
     | None -> { holds = false; trace = None; stats })
  | Prop.Invariant f ->
    let outcome, stats =
      check_reach ?subsumption ?max_states ?rich_trace net (Prop.Not f)
    in
    (match outcome with
     | Some ((), trace) -> { holds = false; trace = Some trace; stats }
     | None -> { holds = true; trace = None; stats })
  | Prop.NoDeadlock ->
    let ks = Array.copy net.Model.max_consts in
    let on_state st = if deadlocked net st then Some () else None in
    let outcome, stats =
      explore ?subsumption ?max_states ?rich_trace net ~ks ~on_state
    in
    (match outcome with
     | Some ((), trace) -> { holds = false; trace = Some trace; stats }
     | None -> { holds = true; trace = None; stats })
  | Prop.LeadsTo (p, q) -> check_liveness ?max_states net ~p ~q
  | Prop.Eventually f ->
    if not (Prop.crisp f) then
      invalid_arg "Checker: A<> operand must not contain clock atoms";
    check_liveness ?max_states ~from_initial_only:true net ~p:Prop.True ~q:f

let reachable_states ?subsumption ?max_states net =
  let ks = Array.copy net.Model.max_consts in
  let acc = ref [] in
  let on_state st =
    acc := st :: !acc;
    None
  in
  let (_ : (unit * string list) option * stats) =
    explore ?subsumption ?max_states net ~ks ~on_state
  in
  List.rev !acc
