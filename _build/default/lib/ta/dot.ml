module Bound = Zones.Bound

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let constr_str (net : Model.network) (c : Model.constr) =
  Format.asprintf "%a" (Model.pp_constr ~clock_names:net.Model.clock_names) c

let edge_label net (e : Model.edge) =
  let parts =
    List.concat
      [
        (match e.Model.data_guard with
         | Some g -> [ Expr.to_string g ]
         | None -> []);
        List.map (constr_str net) e.Model.clock_guard;
        (match e.Model.sync with
         | Model.Tau -> []
         | s -> [ Format.asprintf "%a" Model.pp_sync s ]);
        List.filter_map
          (function
            | Model.Reset (x, v) ->
              Some (Printf.sprintf "%s:=%d" net.Model.clock_names.(x) v)
            | Model.Assign (lv, rhs) ->
              let lhs =
                match lv with
                | Expr.Cell v -> v.Store.var_name
                | Expr.Elem (v, i) ->
                  Printf.sprintf "%s[%s]" v.Store.var_name (Expr.to_string i)
              in
              Some (Printf.sprintf "%s:=%s" lhs (Expr.to_string rhs))
            | Model.Prim (name, _) -> Some (name ^ "()"))
          e.Model.updates;
      ]
  in
  String.concat "\\n" parts

let of_network (net : Model.network) =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "digraph network {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  Array.iteri
    (fun ai (a : Model.automaton) ->
      add "  subgraph cluster_%d {\n    label=\"%s\";\n" ai
        (escape a.Model.auto_name);
      Array.iteri
        (fun li (l : Model.location) ->
          let style =
            match l.Model.kind with
            | Model.Committed -> ", peripheries=2, style=filled, fillcolor=lightpink"
            | Model.Urgent -> ", style=filled, fillcolor=lightyellow"
            | Model.Normal -> ""
          in
          let inv =
            match l.Model.invariant with
            | [] -> ""
            | cs ->
              "\\n" ^ String.concat " && " (List.map (constr_str net) cs)
          in
          add "    n%d_%d [label=\"%s%s\"%s%s];\n" ai li
            (escape l.Model.loc_name) (escape inv)
            style
            (if li = a.Model.initial then ", penwidth=2" else ""))
        a.Model.locations;
      Array.iter
        (fun edges ->
          List.iter
            (fun (e : Model.edge) ->
              add "    n%d_%d -> n%d_%d [label=\"%s\"%s];\n" ai e.Model.src ai
                e.Model.dst
                (escape (edge_label net e))
                (if e.Model.ctrl then "" else ", style=dashed"))
            edges)
        a.Model.out;
      add "  }\n")
    net.Model.automata;
  add "}\n";
  Buffer.contents b
