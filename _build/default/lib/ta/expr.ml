type lvalue = Cell of Store.var | Elem of Store.var * t

and t =
  | Int of int
  | Read of lvalue
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Eq of t * t
  | Neq of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Ite of t * t * t

exception Eval_error of string

let var v = Read (Cell v)
let index v e = Read (Elem (v, e))
let bool_int b = if b then 1 else 0

let rec lvalue_offset store lv =
  match lv with
  | Cell v -> v.Store.off
  | Elem (v, idx) ->
    let i = eval store idx in
    if i < 0 || i >= v.Store.len then
      raise
        (Eval_error
           (Printf.sprintf "index %d out of bounds for %s[%d]" i
              v.Store.var_name v.Store.len))
    else v.Store.off + i

and eval store e =
  match e with
  | Int n -> n
  | Read lv -> store.(lvalue_offset store lv)
  | Neg a -> -eval store a
  | Add (a, b) -> eval store a + eval store b
  | Sub (a, b) -> eval store a - eval store b
  | Mul (a, b) -> eval store a * eval store b
  | Div (a, b) ->
    let d = eval store b in
    if d = 0 then raise (Eval_error "division by zero") else eval store a / d
  | Mod (a, b) ->
    let d = eval store b in
    if d = 0 then raise (Eval_error "modulo by zero") else eval store a mod d
  | Eq (a, b) -> bool_int (eval store a = eval store b)
  | Neq (a, b) -> bool_int (eval store a <> eval store b)
  | Lt (a, b) -> bool_int (eval store a < eval store b)
  | Le (a, b) -> bool_int (eval store a <= eval store b)
  | Gt (a, b) -> bool_int (eval store a > eval store b)
  | Ge (a, b) -> bool_int (eval store a >= eval store b)
  | And (a, b) -> bool_int (eval store a <> 0 && eval store b <> 0)
  | Or (a, b) -> bool_int (eval store a <> 0 || eval store b <> 0)
  | Not a -> bool_int (eval store a = 0)
  | Ite (c, a, b) -> if eval store c <> 0 then eval store a else eval store b

let eval_bool store e = eval store e <> 0

let rec subst_vars f e =
  match e with
  | Int _ -> e
  | Read lv -> Read (subst_lvalue f lv)
  | Neg a -> Neg (subst_vars f a)
  | Add (a, b) -> Add (subst_vars f a, subst_vars f b)
  | Sub (a, b) -> Sub (subst_vars f a, subst_vars f b)
  | Mul (a, b) -> Mul (subst_vars f a, subst_vars f b)
  | Div (a, b) -> Div (subst_vars f a, subst_vars f b)
  | Mod (a, b) -> Mod (subst_vars f a, subst_vars f b)
  | Eq (a, b) -> Eq (subst_vars f a, subst_vars f b)
  | Neq (a, b) -> Neq (subst_vars f a, subst_vars f b)
  | Lt (a, b) -> Lt (subst_vars f a, subst_vars f b)
  | Le (a, b) -> Le (subst_vars f a, subst_vars f b)
  | Gt (a, b) -> Gt (subst_vars f a, subst_vars f b)
  | Ge (a, b) -> Ge (subst_vars f a, subst_vars f b)
  | And (a, b) -> And (subst_vars f a, subst_vars f b)
  | Or (a, b) -> Or (subst_vars f a, subst_vars f b)
  | Not a -> Not (subst_vars f a)
  | Ite (c, a, b) -> Ite (subst_vars f c, subst_vars f a, subst_vars f b)

and subst_lvalue f = function
  | Cell v -> Cell (f v)
  | Elem (v, idx) -> Elem (f v, subst_vars f idx)

let rec pp ppf e =
  let binop ppf op a b = Format.fprintf ppf "(%a %s %a)" pp a op pp b in
  match e with
  | Int n -> Format.pp_print_int ppf n
  | Read (Cell v) -> Format.pp_print_string ppf v.Store.var_name
  | Read (Elem (v, i)) -> Format.fprintf ppf "%s[%a]" v.Store.var_name pp i
  | Neg a -> Format.fprintf ppf "-%a" pp a
  | Add (a, b) -> binop ppf "+" a b
  | Sub (a, b) -> binop ppf "-" a b
  | Mul (a, b) -> binop ppf "*" a b
  | Div (a, b) -> binop ppf "/" a b
  | Mod (a, b) -> binop ppf "%" a b
  | Eq (a, b) -> binop ppf "==" a b
  | Neq (a, b) -> binop ppf "!=" a b
  | Lt (a, b) -> binop ppf "<" a b
  | Le (a, b) -> binop ppf "<=" a b
  | Gt (a, b) -> binop ppf ">" a b
  | Ge (a, b) -> binop ppf ">=" a b
  | And (a, b) -> binop ppf "&&" a b
  | Or (a, b) -> binop ppf "||" a b
  | Not a -> Format.fprintf ppf "!%a" pp a
  | Ite (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp a pp b

let to_string e = Format.asprintf "%a" pp e
