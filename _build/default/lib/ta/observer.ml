(* Adding the observer clock at the highest index leaves every existing
   clock reference valid; no edge resets it, so it tracks global time.
   Its max-constant entry is 0 — the property's own constant is merged in
   by the checker (Prop.merge_constants). *)

let add_global_clock (net : Model.network) =
  let fresh = net.Model.n_clocks + 1 in
  ( {
      net with
      Model.n_clocks = fresh;
      clock_names = Array.append net.Model.clock_names [| "t_obs" |];
      max_consts = Array.append net.Model.max_consts [| 0 |];
    },
    fresh )

let possibly_within net f ~bound =
  let net', t = add_global_clock net in
  Checker.check net' (Prop.Possibly (Prop.And (f, Prop.Clock (Model.clock_le t bound))))

let invariant_until net f ~bound =
  let net', t = add_global_clock net in
  Checker.check net'
    (Prop.Invariant (Prop.Or (Prop.Clock (Model.clock_gt t bound), f)))
