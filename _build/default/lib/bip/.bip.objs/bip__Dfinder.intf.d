lib/bip/dfinder.mli: System
