lib/bip/transform.mli: System
