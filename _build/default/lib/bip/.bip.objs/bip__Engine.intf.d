lib/bip/engine.mli: Format Random System
