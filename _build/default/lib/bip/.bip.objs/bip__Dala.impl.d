lib/bip/dala.ml: Array Component Engine List Printf Random String System
