lib/bip/codegen.mli: System
