lib/bip/component.ml: Array List Option Printf String
