lib/bip/system.mli: Component
