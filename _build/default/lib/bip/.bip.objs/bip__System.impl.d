lib/bip/system.ml: Array Component Hashtbl List Printf String
