lib/bip/transform.ml: Array Component List Option String System
