lib/bip/dala.mli: Engine System
