lib/bip/engine.ml: Array Component Format Hashtbl List Printf Queue Random String System
