lib/bip/component.mli:
