lib/bip/dfinder.ml: Array Component Engine Fun List System
