lib/bip/codegen.ml: Array Buffer Component List Printf String System
