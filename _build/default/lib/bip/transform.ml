(* Priority elimination: conjoin each interaction's guard with the
   negation of every inhibitor's enabledness. Enabledness of an
   interaction is evaluated exactly as the engine does: port-enabled on
   every participant plus the original guard. *)

let interaction_enabled (sys : System.t) (i : System.interaction) locs stores =
  List.for_all
    (fun (ci, (p : Component.port)) ->
      Component.port_enabled sys.components.(ci) ~loc:locs.(ci)
        ~store:stores.(ci) p.Component.port_id)
    i.System.i_ports
  && (match i.System.i_guard with None -> true | Some g -> g locs stores)

let port_set (i : System.interaction) =
  List.map
    (fun (ci, (p : Component.port)) -> (ci, p.Component.port_id))
    i.System.i_ports
  |> List.sort compare

let compile_priorities (sys : System.t) =
  let inhibitors (a : System.interaction) =
    (* Explicit priority rules. *)
    let by_rule =
      List.filter_map
        (fun (r : System.priority) ->
          if String.equal r.System.low a.System.i_name then
            Array.to_list sys.interactions
            |> List.find_opt (fun (b : System.interaction) ->
                   String.equal b.System.i_name r.System.high)
            |> Option.map (fun b -> (b, r.System.when_))
          else None)
        sys.priorities
    in
    (* Implicit maximal progress: strict port supersets inhibit. *)
    let by_maximality =
      if not sys.broadcast_maximal then []
      else begin
        let pa = port_set a in
        Array.to_list sys.interactions
        |> List.filter_map (fun (b : System.interaction) ->
               let pb = port_set b in
               if
                 b.System.i_id <> a.System.i_id
                 && List.length pb > List.length pa
                 && List.for_all (fun p -> List.mem p pb) pa
               then Some (b, None)
               else None)
      end
    in
    by_rule @ by_maximality
  in
  let compiled =
    Array.map
      (fun (a : System.interaction) ->
        match inhibitors a with
        | [] -> a
        | inhs ->
          let guard locs stores =
            (match a.System.i_guard with
             | None -> true
             | Some g -> g locs stores)
            && List.for_all
                 (fun ((b : System.interaction), when_) ->
                   let applies =
                     match when_ with
                     | None -> true
                     | Some c -> c locs stores
                   in
                   not (applies && interaction_enabled sys b locs stores))
                 inhs
          in
          { a with System.i_guard = Some guard })
      sys.interactions
  in
  {
    sys with
    System.interactions = compiled;
    priorities = [];
    broadcast_maximal = false;
  }
