type interaction = {
  i_name : string;
  i_ports : (int * Component.port) list;
  i_guard : (int array -> int array array -> bool) option;
  i_action : (int array array -> unit) option;
  i_id : int;
}

type connector =
  | Rendezvous of {
      c_name : string;
      members : (int * Component.port) list;
      guard : (int array -> int array array -> bool) option;
      action : (int array array -> unit) option;
    }
  | Broadcast of {
      c_name : string;
      trigger : int * Component.port;
      synchrons : (int * Component.port) list;
      action : (int array array -> unit) option;
    }

type priority = {
  low : string;
  high : string;
  when_ : (int array -> int array array -> bool) option;
}

type t = {
  components : Component.t array;
  interactions : interaction array;
  priorities : priority list;
  broadcast_maximal : bool;
}

let subsets xs =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
    [ [] ] xs

let make ~components ~connectors ?(priorities = []) ?(broadcast_maximal = true)
    () =
  let n = Array.length components in
  let check_member (ci, (p : Component.port)) =
    if ci < 0 || ci >= n then invalid_arg "Bip.System.make: bad component index";
    let c = components.(ci) in
    if p.Component.port_id < 0 || p.Component.port_id >= Array.length c.Component.ports
    then invalid_arg "Bip.System.make: bad port"
  in
  let interactions = ref [] in
  let next_id = ref 0 in
  let push name ports guard action =
    List.iter check_member ports;
    let i =
      { i_name = name; i_ports = ports; i_guard = guard; i_action = action; i_id = !next_id }
    in
    incr next_id;
    interactions := i :: !interactions
  in
  List.iter
    (function
      | Rendezvous { c_name; members; guard; action } ->
        if members = [] then invalid_arg "Bip.System.make: empty rendezvous";
        push c_name members guard action
      | Broadcast { c_name; trigger; synchrons; action } ->
        (* One interaction per subset of synchrons (trigger always in). *)
        List.iter
          (fun subset ->
            let suffix =
              match subset with
              | [] -> ""
              | _ ->
                "+"
                ^ String.concat "+"
                    (List.map
                       (fun (ci, (p : Component.port)) ->
                         Printf.sprintf "%s.%s"
                           components.(ci).Component.comp_name
                           p.Component.port_name)
                       subset)
            in
            push (c_name ^ suffix) (trigger :: subset) None action)
          (subsets synchrons))
    connectors;
  let interactions = Array.of_list (List.rev !interactions) in
  (* Unique names (priorities refer to interactions by name). *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      if Hashtbl.mem seen i.i_name then
        invalid_arg
          (Printf.sprintf "Bip.System.make: duplicate interaction %s" i.i_name);
      Hashtbl.replace seen i.i_name ())
    interactions;
  List.iter
    (fun r ->
      if not (Hashtbl.mem seen r.low && Hashtbl.mem seen r.high) then
        invalid_arg
          (Printf.sprintf "Bip.System.make: unknown interaction in priority %s < %s"
             r.low r.high))
    priorities;
  { components; interactions; priorities; broadcast_maximal }

let interaction_by_name t name =
  match
    Array.to_list t.interactions
    |> List.find_opt (fun i -> String.equal i.i_name name)
  with
  | Some i -> i
  | None -> raise Not_found
