(** BIP composite systems: Interaction and Priority — the two glue layers
    of Section IV.

    Connectors combine the two protocols the paper names: {e rendezvous}
    (strong symmetric synchronisation: all ports fire together) and
    {e broadcast} (a trigger port plus any subset of synchron ports, with
    larger subsets preferred through the automatic maximal-progress
    priority). Priorities filter among simultaneously enabled
    interactions and are the mechanism the execution controller (R2C)
    uses to steer the system. *)

(** A concrete interaction: one port per participating component, an
    optional global guard, and a data-transfer action executed on the
    participants' stores when the interaction fires. *)
type interaction = {
  i_name : string;
  i_ports : (int * Component.port) list;  (** (component index, port) *)
  i_guard : (int array -> int array array -> bool) option;
      (** receives the location vector and all local stores *)
  i_action : (int array array -> unit) option;
  i_id : int;
}

type connector =
  | Rendezvous of {
      c_name : string;
      members : (int * Component.port) list;
      guard : (int array -> int array array -> bool) option;
      action : (int array array -> unit) option;
    }
  | Broadcast of {
      c_name : string;
      trigger : int * Component.port;
      synchrons : (int * Component.port) list;
      action : (int array array -> unit) option;
    }

(** Priority rule: when both are enabled (and [when_] holds), [low] is
    inhibited by [high]. Interactions are referred to by name. *)
type priority = {
  low : string;
  high : string;
  when_ : (int array -> int array array -> bool) option;
}

type t = {
  components : Component.t array;
  interactions : interaction array;
  priorities : priority list;
  broadcast_maximal : bool;
      (** prefer maximal broadcast subsets (BIP's default) *)
}

(** [make ~components ~connectors ~priorities ()] elaborates connectors
    into concrete interactions (broadcasts enumerate their subsets,
    trigger-alone included).
    @raise Invalid_argument on bad component indices, duplicate
    interaction names, or priorities naming unknown interactions. *)
val make :
  components:Component.t array ->
  connectors:connector list ->
  ?priorities:priority list ->
  ?broadcast_maximal:bool ->
  unit ->
  t

val interaction_by_name : t -> string -> interaction
