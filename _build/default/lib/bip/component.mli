(** BIP atomic components: Behaviour.

    An atomic component is an automaton over control locations with local
    integer variables; every transition is labelled by a {e port} — the
    component's interface — and may carry a guard and an update on the
    local store. (Internal steps are modelled by ports wired to singleton
    connectors, as in BIP.) *)

type port = { port_name : string; port_id : int }

type transition = {
  t_src : int;
  t_dst : int;
  t_port : int;  (** port id *)
  t_guard : int array -> bool;  (** over the local store *)
  t_has_guard : bool;
      (** whether a guard was supplied; guarded transitions are treated
          as possibly disabled by the compositional deadlock proof *)
  t_update : int array -> unit;  (** mutates a private copy *)
}

type t = {
  comp_name : string;
  locations : string array;
  ports : port array;
  transitions : transition list array;  (** outgoing, by location *)
  initial_loc : int;
  initial_store : int array;
  var_names : string array;
}

(** {1 Builder} *)

type builder

val create : string -> builder

val add_location : builder -> string -> int

val add_port : builder -> string -> port

val add_var : builder -> ?init:int -> string -> int
(** Returns the variable's index in the local store. *)

val add_transition :
  builder ->
  src:int ->
  dst:int ->
  port:port ->
  ?guard:(int array -> bool) ->
  ?update:(int array -> unit) ->
  unit ->
  unit

val set_initial : builder -> int -> unit

(** @raise Invalid_argument on empty/ill-formed components. *)
val build : builder -> t

(** {1 Queries} *)

(** [port_enabled c ~loc ~store p] — some transition from [loc] is
    labelled [p] with a true guard. *)
val port_enabled : t -> loc:int -> store:int array -> int -> bool

(** [transitions_on c ~loc ~store p] — the enabled transitions on [p]. *)
val transitions_on : t -> loc:int -> store:int array -> int -> transition list

val loc_index : t -> string -> int
val port_by_name : t -> string -> port
