type port = { port_name : string; port_id : int }

type transition = {
  t_src : int;
  t_dst : int;
  t_port : int;
  t_guard : int array -> bool;
  t_has_guard : bool; (* set when a guard was supplied; D-Finder treats
                         guarded transitions as possibly disabled *)
  t_update : int array -> unit;
}

type t = {
  comp_name : string;
  locations : string array;
  ports : port array;
  transitions : transition list array;
  initial_loc : int;
  initial_store : int array;
  var_names : string array;
}

type builder = {
  b_name : string;
  mutable b_locs : string list;
  mutable b_ports : port list;
  mutable b_vars : (string * int) list;
  mutable b_trans : transition list;
  mutable b_init : int;
}

let create name =
  { b_name = name; b_locs = []; b_ports = []; b_vars = []; b_trans = []; b_init = 0 }

let add_location b name =
  b.b_locs <- name :: b.b_locs;
  List.length b.b_locs - 1

let add_port b name =
  let p = { port_name = name; port_id = List.length b.b_ports } in
  b.b_ports <- p :: b.b_ports;
  p

let add_var b ?(init = 0) name =
  b.b_vars <- (name, init) :: b.b_vars;
  List.length b.b_vars - 1

let add_transition b ~src ~dst ~port ?guard ?(update = fun _ -> ()) () =
  let t_has_guard = guard <> None in
  let t_guard = Option.value guard ~default:(fun _ -> true) in
  b.b_trans <-
    {
      t_src = src;
      t_dst = dst;
      t_port = port.port_id;
      t_guard;
      t_has_guard;
      t_update = update;
    }
    :: b.b_trans

let set_initial b l = b.b_init <- l

let build b =
  let locations = Array.of_list (List.rev b.b_locs) in
  if Array.length locations = 0 then
    invalid_arg (Printf.sprintf "Component %s has no locations" b.b_name);
  let n_locs = Array.length locations in
  let transitions = Array.make n_locs [] in
  List.iter
    (fun t ->
      if t.t_src < 0 || t.t_src >= n_locs || t.t_dst < 0 || t.t_dst >= n_locs
      then invalid_arg (Printf.sprintf "Component %s: bad transition" b.b_name);
      transitions.(t.t_src) <- t :: transitions.(t.t_src))
    b.b_trans;
  Array.iteri (fun i l -> transitions.(i) <- l) (Array.map List.rev transitions);
  if b.b_init < 0 || b.b_init >= n_locs then
    invalid_arg (Printf.sprintf "Component %s: bad initial location" b.b_name);
  let vars = List.rev b.b_vars in
  {
    comp_name = b.b_name;
    locations;
    ports = Array.of_list (List.rev b.b_ports);
    transitions;
    initial_loc = b.b_init;
    initial_store = Array.of_list (List.map snd vars);
    var_names = Array.of_list (List.map fst vars);
  }

let transitions_on c ~loc ~store p =
  List.filter
    (fun t -> t.t_port = p && t.t_guard store)
    c.transitions.(loc)

let port_enabled c ~loc ~store p = transitions_on c ~loc ~store p <> []

let loc_index c name =
  let found = ref (-1) in
  Array.iteri (fun i l -> if String.equal l name then found := i) c.locations;
  if !found < 0 then raise Not_found else !found

let port_by_name c name =
  match
    Array.to_list c.ports
    |> List.find_opt (fun p -> String.equal p.port_name name)
  with
  | Some p -> p
  | None -> raise Not_found
