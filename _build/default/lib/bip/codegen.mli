(** OCaml code generation for BIP component coordination.

    Emits a standalone, dependency-free OCaml module implementing the
    centralized engine specialised to one system: component automata and
    interactions become static data, priority filtering and broadcast
    maximality are compiled in. Guards and updates — being behaviour, not
    glue — are exposed as registration hooks (defaulting to [true]/no-op),
    mirroring how the BIP tool-chain links generated coordination code
    against functional component code. *)

(** [to_ocaml ?module_comment sys] returns the generated source text. *)
val to_ocaml : ?module_comment:string -> System.t -> string

(** [interaction_count_in_source src] — number of interaction entries the
    generated table declares (used by tests). *)
val interaction_count_in_source : string -> int
