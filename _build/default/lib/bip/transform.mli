(** Source-to-source transformation of BIP systems (the paper's ref. [24]
    direction: architecture is a first-class object that "can be analyzed
    and transformed").

    {!compile_priorities} eliminates the priority layer by strengthening
    every interaction's guard with "no inhibiting interaction is
    enabled" — including the implicit maximal-progress priorities of
    broadcasts. The result has no priorities and [broadcast_maximal =
    false] but the same operational behaviour, which the test suite
    checks by trace and reachable-state equivalence. Flattening the glue
    like this is what allows distributed implementations (ref. [25]) to
    evaluate each interaction's readiness locally. *)

(** [compile_priorities sys] — semantics-preserving priority elimination. *)
val compile_priorities : System.t -> System.t
