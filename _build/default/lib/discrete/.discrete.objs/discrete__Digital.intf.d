lib/discrete/digital.mli: Format Hashtbl Ta
