lib/discrete/digital.ml: Array Format Fun Hashtbl List Printf Queue String Ta Zones
