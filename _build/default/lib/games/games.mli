(** Timed-game solving and controller synthesis — the UPPAAL-TIGA
    reproduction (Figs. 2–3 of the paper).

    Edges marked [ctrl:false] belong to the environment; a move is
    controllable only if every participating edge is. The game is solved
    on the digital-clocks graph with the conservative turn-based
    abstraction documented in DESIGN.md: a state is winning when every
    uncontrollable move stays winning {e and} the controller owns a
    winning move (an action or the unit delay). Reachability uses the
    attractor (least fixpoint), safety the largest fixpoint. Synthesized
    strategies are memoryless over digital states and can be re-verified
    by {!closed_loop_safe} / {!closed_loop_reaches}. *)

module Digital = Discrete.Digital

type objective =
  | Safety of (Digital.dstate -> bool)  (** stay inside the safe set *)
  | Reach of (Digital.dstate -> bool)  (** force reaching the target *)

type action = [ `Delay | `Move of Ta.Zone_graph.move ]

type solution = {
  graph : Digital.graph;
  winning : bool array;  (** indexed by state id *)
  strategy : (int, action) Hashtbl.t;
      (** state id -> controller's choice; absent = wait for environment *)
  initial_winning : bool;
}

(** [solve net objective] computes the winning region and a strategy.
    @raise Invalid_argument if the model is not closed/diagonal-free. *)
val solve : ?max_states:int -> Ta.Model.network -> objective -> solution

(** [winning_count s] — number of winning states (strategy size proxy). *)
val winning_count : solution -> int

(** [closed_loop_safe s ~safe] re-verifies that under the synthesized
    strategy all reachable states satisfy [safe] — the environment moves
    freely, the controller plays only its strategy choice (plus delay
    when it has no choice recorded). *)
val closed_loop_safe : solution -> safe:(Digital.dstate -> bool) -> bool

(** [closed_loop_reaches s ~target] re-verifies that every closed-loop
    run from the initial state reaches [target] (no cycle or sink avoids
    it). *)
val closed_loop_reaches : solution -> target:(Digital.dstate -> bool) -> bool

(** {1 The train game of Figs. 2–3} *)

module Train_game : sig
  (** [make ~n_trains ()] builds the timed game: trains whose [appr],
      cross and [leave] moves are uncontrollable, plus the unconstrained
      single-location controller of Fig. 3 whose [stop!]/[go!] edges are
      the controllable moves. [constants] selects the paper's timing
      constants (default) or a [`Compact] set that preserves the game
      structure with a much smaller digital graph (used for scaling). *)
  val make :
    ?constants:[ `Paper | `Compact ] -> n_trains:int -> unit -> Ta.Model.network

  (** [safe net st] — at most one train in Cross. *)
  val safe : Ta.Model.network -> Digital.dstate -> bool

  (** [all_crossed_once net st] — every train has completed a crossing
      (used as a reachability objective). *)
  val all_crossed_once : Ta.Model.network -> Digital.dstate -> bool
end
