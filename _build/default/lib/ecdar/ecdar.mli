(** Compositional refinement of timed I/O specifications — the ECDAR
    reproduction (ref. [8]: "Timed I/O automata: a complete specification
    theory for real-time systems").

    A specification is a closed TA network with its channels partitioned
    into inputs and outputs (auxiliary environment components close the
    network, as in {!Mbt.Demo.timed_server}). Refinement [impl ≤ spec] is
    the timed alternating simulation of the TIOA theory, decided as a
    greatest fixpoint on the product of the digital-clock graphs:

    - outputs and delays of the implementation must be matched by the
      specification (covariant);
    - inputs admitted by the specification must be admitted by the
      implementation (contravariant).

    Restrictions (checked): closed diagonal-free constraints (digital
    clocks), and no unobservable moves. *)

type t = {
  net : Ta.Model.network;
  inputs : string list;
  outputs : string list;
}

(** [make net ~inputs ~outputs] — wraps and validates a specification.
    @raise Invalid_argument when the network is not closed or some move
    emits a channel outside [inputs @ outputs]. *)
val make :
  Ta.Model.network -> inputs:string list -> outputs:string list -> t

type refinement_result = {
  refines : bool;
  checked_pairs : int;
  witness : string option;  (** violated obligation, for diagnostics *)
}

(** [refines ~impl ~spec] — alternating-simulation refinement. The two
    specifications must agree on their alphabets.
    @raise Invalid_argument otherwise. *)
val refines : impl:t -> spec:t -> refinement_result

(** [compose a b] — structural composition ("structural composition of
    specifications", ref. [8]): the merged network synchronises the two
    halves on shared channel names; the composite's outputs are the union
    of both sides' outputs, its inputs the remaining inputs.
    @raise Invalid_argument when the output alphabets overlap. *)
val compose : t -> t -> t

(** [refines_conjunction ~impl ~specs] — logical composition
    (conjunction) through its characteristic property on deterministic
    specifications: an implementation refines [s1 AND ... AND sn] iff it
    refines every [si]. *)
val refines_conjunction : impl:t -> specs:t list -> bool

(** [consistent s] — no reachable state is a timelock (time can always
    pass, or some output/input move exists). Inconsistent specifications
    admit no implementation. *)
val consistent : t -> bool
