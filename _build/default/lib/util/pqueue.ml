type 'a entry = { priority : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty q = q.size = 0
let length q = q.size

(* Entry ordering: priority first, then insertion sequence for determinism. *)
let before a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

(* Grow the backing array, using [seed] to fill fresh slots so no dummy
   element is ever needed. *)
let grow q seed =
  let capacity = max 16 (2 * Array.length q.heap) in
  let fresh = Array.make capacity seed in
  Array.blit q.heap 0 fresh 0 q.size;
  q.heap <- fresh

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q ~priority value =
  let entry = { priority; seq = q.next_seq; value } in
  if q.size = Array.length q.heap then grow q entry;
  q.heap.(q.size) <- entry;
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop_min q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.priority, top.value)
  end
