lib/util/scc.ml: Array
