lib/util/scc.mli:
