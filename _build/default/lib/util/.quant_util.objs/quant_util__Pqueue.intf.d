lib/util/pqueue.mli:
