(* Iterative Tarjan: an explicit stack of (node, remaining successors)
   frames replaces recursion so million-state graphs cannot overflow. *)

let compute ~n ~succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let n_comps = ref 0 in
  let visit root =
    if index.(root) < 0 then begin
      let frames = ref [ (root, ref (succs root)) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, rest) :: tail ->
          (match !rest with
           | w :: more ->
             rest := more;
             if index.(w) < 0 then begin
               index.(w) <- !next_index;
               lowlink.(w) <- !next_index;
               incr next_index;
               stack := w :: !stack;
               on_stack.(w) <- true;
               frames := (w, ref (succs w)) :: !frames
             end
             else if on_stack.(w) then
               lowlink.(v) <- min lowlink.(v) index.(w)
           | [] ->
             frames := tail;
             (match tail with
              | (parent, _) :: _ ->
                lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
              | [] -> ());
             if lowlink.(v) = index.(v) then begin
               let rec pop () =
                 match !stack with
                 | [] -> assert false
                 | w :: rest ->
                   stack := rest;
                   on_stack.(w) <- false;
                   comp.(w) <- !n_comps;
                   if w <> v then pop ()
               in
               pop ();
               incr n_comps
             end)
      done
    end
  in
  for v = 0 to n - 1 do
    visit v
  done;
  (comp, !n_comps)
