(** Imperative binary min-heap keyed by integer priorities.

    Used by the priced-reachability (Dijkstra) and game solvers. Ties are
    broken by insertion order, which keeps searches deterministic. *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** [push q ~priority v] inserts [v] with the given priority. *)
val push : 'a t -> priority:int -> 'a -> unit

(** [pop_min q] removes and returns the minimum-priority entry as
    [(priority, value)], or [None] when the queue is empty. *)
val pop_min : 'a t -> (int * 'a) option

(** [is_empty q] is true when the queue holds no entry. *)
val is_empty : 'a t -> bool

(** [length q] is the number of queued entries. *)
val length : 'a t -> int
