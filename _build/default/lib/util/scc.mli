(** Tarjan's strongly connected components.

    Used by the WCET (longest-path) analysis and liveness checks. *)

(** [compute ~n ~succs] assigns each node [0..n-1] a component id.
    Component ids are in {e reverse topological} order: every edge of the
    condensation goes from a higher id to a lower id (self-components
    aside). Returns [(comp, n_comps)]. Iterative, safe on deep graphs. *)
val compute : n:int -> succs:(int -> int list) -> int array * int
