lib/smc/estimate.ml: Array
