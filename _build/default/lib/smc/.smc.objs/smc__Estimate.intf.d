lib/smc/estimate.mli:
