lib/smc/smc.ml: Array Estimate Fun List Random Stochastic Ta
