lib/smc/stochastic.ml: Array Fun Hashtbl List Random Ta Zones
