lib/smc/smc.mli: Estimate Stochastic Ta
