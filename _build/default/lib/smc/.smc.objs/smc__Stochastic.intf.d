lib/smc/stochastic.mli: Random Ta
