(** Statistical estimators for SMC verdicts.

    Provides the three standard tools of statistical model checking:
    fixed-size estimation with Wilson confidence intervals, the
    Chernoff–Hoeffding sample-size bound (UPPAAL-SMC's probability
    estimation), and Wald's sequential probability ratio test (SPRT) for
    hypothesis testing. *)

type interval = { p_hat : float; low : float; high : float; trials : int }

(** [wilson ~successes ~trials ~confidence] is the Wilson score interval
    (default confidence 0.95). *)
val wilson : ?confidence:float -> successes:int -> trials:int -> unit -> interval

(** [chernoff_runs ~eps ~alpha] — number of runs so that the empirical
    mean is within [eps] of the true probability with confidence
    [1 - alpha]: ceil(ln(2/alpha) / (2 eps²)). *)
val chernoff_runs : eps:float -> alpha:float -> int

(** SPRT verdict for H0: p >= theta + delta against H1: p <= theta - delta. *)
type sprt_result = { accept_h0 : bool; samples : int }

(** [sprt ~theta ~delta ~alpha ~beta sample] draws Bernoulli samples until
    one hypothesis is accepted; [alpha]/[beta] are the error bounds.
    [max_samples] (default 1_000_000) forces a decision by comparison
    with [theta] if reached. *)
val sprt :
  ?max_samples:int ->
  theta:float ->
  delta:float ->
  alpha:float ->
  beta:float ->
  (unit -> bool) ->
  sprt_result

(** [mean_std xs] — sample mean and (Bessel-corrected) standard deviation. *)
val mean_std : float array -> float * float
