type action = { a_label : string; probs : (float * int) list; reward : float }
type t = { acts : action list array }

let make actions =
  let n = Array.length actions in
  Array.iter
    (fun choices ->
      List.iter
        (fun a ->
          let total = List.fold_left (fun s (p, _) -> s +. p) 0.0 a.probs in
          if abs_float (total -. 1.0) > 1e-9 then
            invalid_arg
              (Printf.sprintf "Mdp.make: distribution of %S sums to %.12f"
                 a.a_label total);
          List.iter
            (fun (p, s) ->
              if p < 0.0 || p > 1.0 +. 1e-12 then
                invalid_arg "Mdp.make: probability out of range";
              if s < 0 || s >= n then invalid_arg "Mdp.make: bad successor")
            a.probs)
        choices)
    actions;
  { acts = Array.copy actions }

let n_states t = Array.length t.acts
let actions t s = t.acts.(s)

type sweep = Jacobi | Gauss_seidel
type vi_stats = { iterations : int; final_delta : float }

let pick ~maximize a b = if maximize then max a b else min a b

(* Generic value iteration from below: v := max/min over actions of
   (base(a) + sum p * v'), with target states pinned to [pin]. *)
let value_iterate ?(epsilon = 1e-12) ?(sweep = Gauss_seidel)
    ?(max_iter = 2_000_000) t ~target ~maximize ~pin ~base ~frozen =
  let n = n_states t in
  let v = Array.make n 0.0 in
  Array.iteri (fun s tgt -> if tgt then v.(s) <- pin) target;
  Array.iteri (fun s f -> if f && not target.(s) then v.(s) <- infinity) frozen;
  let stats = ref { iterations = 0; final_delta = infinity } in
  (try
     for iter = 1 to max_iter do
       let source = match sweep with Jacobi -> Array.copy v | Gauss_seidel -> v in
       let delta = ref 0.0 in
       for s = 0 to n - 1 do
         if (not target.(s)) && not frozen.(s) then begin
           match t.acts.(s) with
           | [] -> () (* absorbing non-target: value stays 0 *)
           | choices ->
             let value =
               List.fold_left
                 (fun acc a ->
                   let q =
                     (* skip p = 0 terms: 0 * infinity would poison sums *)
                     List.fold_left
                       (fun sum (p, s') ->
                         if p > 0.0 then sum +. (p *. source.(s')) else sum)
                       (base a) a.probs
                   in
                   match acc with
                   | None -> Some q
                   | Some best -> Some (pick ~maximize best q))
                 None choices
             in
             (match value with
              | Some q ->
                delta := max !delta (abs_float (q -. v.(s)));
                v.(s) <- q
              | None -> ())
         end
       done;
       stats := { iterations = iter; final_delta = !delta };
       if !delta <= epsilon then raise Exit
     done
   with Exit -> ());
  (v, !stats)

let reach_prob ?epsilon ?sweep ?max_iter t ~target ~maximize =
  let n = n_states t in
  if Array.length target <> n then invalid_arg "Mdp.reach_prob: target size";
  let frozen = Array.make n false in
  value_iterate ?epsilon ?sweep ?max_iter t ~target ~maximize ~pin:1.0
    ~base:(fun _ -> 0.0)
    ~frozen

let bounded_reach_prob t ~target ~steps ~maximize =
  let n = n_states t in
  if Array.length target <> n then
    invalid_arg "Mdp.bounded_reach_prob: target size";
  let v = ref (Array.init n (fun s -> if target.(s) then 1.0 else 0.0)) in
  for _ = 1 to steps do
    let prev = !v in
    let next =
      Array.init n (fun s ->
          if target.(s) then 1.0
          else
            match t.acts.(s) with
            | [] -> 0.0
            | choices ->
              List.fold_left
                (fun acc a ->
                  let q =
                    List.fold_left
                      (fun sum (p, s') ->
                        if p > 0.0 then sum +. (p *. prev.(s')) else sum)
                      0.0 a.probs
                  in
                  match acc with
                  | None -> Some q
                  | Some best -> Some (pick ~maximize best q))
                None choices
              |> Option.value ~default:0.0)
    in
    v := next
  done;
  !v

let expected_reward ?epsilon ?sweep ?max_iter t ~target ~maximize =
  let n = n_states t in
  if Array.length target <> n then invalid_arg "Mdp.expected_reward: target size";
  (* Divergence mask: maximizing needs every scheduler to reach the target
     almost surely (min reach = 1); minimizing needs some scheduler to
     (max reach = 1). Other states get value infinity. *)
  let reach, _ = reach_prob ?epsilon ?sweep ?max_iter t ~target ~maximize:(not maximize) in
  let frozen = Array.map (fun p -> p < 1.0 -. 1e-9) reach in
  value_iterate ?epsilon ?sweep ?max_iter t ~target ~maximize ~pin:0.0
    ~base:(fun a -> a.reward)
    ~frozen

let check t =
  Array.for_all
    (fun choices ->
      List.for_all
        (fun a ->
          abs_float (List.fold_left (fun s (p, _) -> s +. p) 0.0 a.probs -. 1.0)
          <= 1e-9)
        choices)
    t.acts
