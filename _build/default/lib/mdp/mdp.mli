(** Sparse Markov decision processes with value iteration — the
    probabilistic model checking substrate behind the [mcpta] backend
    (the paper's PRISM stand-in).

    Supports maximum/minimum unbounded and step-bounded reachability
    probabilities and maximum/minimum expected total reward to a target,
    with divergence detection. DTMCs are MDPs with one action per state. *)

(** One nondeterministic choice: a probability distribution over
    successor states plus an immediate reward. *)
type action = {
  a_label : string;
  probs : (float * int) list;  (** (probability, successor) — sums to 1 *)
  reward : float;
}

type t

(** [make actions] builds an MDP; [actions.(s)] lists the choices of
    state [s] (empty = absorbing with reward 0).
    @raise Invalid_argument on bad targets or distributions that do not
    sum to 1 (tolerance 1e-9). *)
val make : action list array -> t

val n_states : t -> int
val actions : t -> int -> action list

(** How value iteration sweeps states (ablation switch): Jacobi uses the
    previous vector only; Gauss–Seidel reuses fresh values in-sweep. *)
type sweep = Jacobi | Gauss_seidel

type vi_stats = { iterations : int; final_delta : float }

(** [reach_prob t ~target ~maximize] — per-state optimal probability of
    eventually reaching a target state. Value iteration from below
    (converges to the exact least fixpoint). *)
val reach_prob :
  ?epsilon:float ->
  ?sweep:sweep ->
  ?max_iter:int ->
  t ->
  target:bool array ->
  maximize:bool ->
  float array * vi_stats

(** [bounded_reach_prob t ~target ~steps ~maximize] — probability of
    reaching the target within [steps] transitions. *)
val bounded_reach_prob :
  t -> target:bool array -> steps:int -> maximize:bool -> float array

(** [expected_reward t ~target ~maximize] — optimal expected total reward
    accumulated until the target is first reached. A state's value is
    [infinity] when the (adversarial) scheduler can avoid the target:
    for [maximize], whenever some scheduler misses the target with
    positive probability; for [minimize], whenever no scheduler reaches
    it almost surely. *)
val expected_reward :
  ?epsilon:float ->
  ?sweep:sweep ->
  ?max_iter:int ->
  t ->
  target:bool array ->
  maximize:bool ->
  float array * vi_stats

(** [check t] re-validates distribution sums; used by property tests. *)
val check : t -> bool
