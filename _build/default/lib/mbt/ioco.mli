(** The ioco implementation relation (Input/Output Conformance).

    [impl ioco spec] iff for every suspension trace sigma of the spec,
    [out(impl after sigma) ⊆ out(spec after sigma)]. Decided exactly for
    finite models by a product walk over the two suspension automata.
    The testing hypothesis (implementations are input-enabled) is
    validated separately with {!Lts.input_enabled}. *)

type counterexample = {
  trace : string list;  (** suspension trace (labels as printed) *)
  bad_obs : Lts.obs;  (** the implementation observation not allowed *)
}

(** [check ~impl ~spec] — exact decision with a counterexample on
    failure. *)
val check : impl:Lts.t -> spec:Lts.t -> (bool, counterexample) result

(** [conforms ~impl ~spec] — just the boolean. *)
val conforms : impl:Lts.t -> spec:Lts.t -> bool
