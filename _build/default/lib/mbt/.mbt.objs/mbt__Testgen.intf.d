lib/mbt/testgen.mli: Lts Random
