lib/mbt/ioco.ml: Format Hashtbl List Lts Queue
