lib/mbt/demo.ml: Lts Ta
