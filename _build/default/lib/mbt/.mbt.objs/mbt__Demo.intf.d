lib/mbt/demo.mli: Lts Ta
