lib/mbt/lts.ml: Array Buffer Format Hashtbl List Printf
