lib/mbt/testgen.ml: Hashtbl List Lts Random
