lib/mbt/rtioco.ml: Array Discrete Hashtbl List Random Ta
