lib/mbt/rtioco.mli: Discrete Ta
