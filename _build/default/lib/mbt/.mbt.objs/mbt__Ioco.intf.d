lib/mbt/ioco.mli: Lts
