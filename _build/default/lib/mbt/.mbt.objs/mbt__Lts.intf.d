lib/mbt/lts.mli: Format
