(** Online timed testing — the UPPAAL-TRON reproduction (rtioco).

    The tester holds the specification as a timed-automata network whose
    channels are partitioned into {e inputs} (tester-controlled) and
    {e outputs} (implementation-controlled), and maintains a {e state
    estimate}: the set of digital states the spec could be in after the
    observed timed trace. Each round (one model time unit) the tester
    either injects an input allowed by the estimate or lets time pass;
    outputs and silence are checked against the estimate on the fly —
    tests are derived, executed and checked during execution, as the
    paper describes TRON. *)

module Digital = Discrete.Digital

(** The tester's view of a timed IUT. Time is discrete (one [tick] = one
    model time unit); outputs happen at instants. *)
type timed_iut = {
  ti_reset : unit -> unit;
  ti_input : string -> unit;  (** inject an input now *)
  ti_tick : unit -> string option;
      (** advance one time unit; the IUT may emit an output (channel
          name) at the new instant *)
}

type verdict =
  | T_pass of int  (** rounds executed *)
  | T_fail of { round : int; reason : string }

(** [test net ~inputs ~outputs ~rounds ~seed iut] runs one online test.
    [inputs]/[outputs] are channel names of [net].
    @raise Invalid_argument when [net] is not closed/diagonal-free. *)
val test :
  Ta.Model.network ->
  inputs:string list ->
  outputs:string list ->
  rounds:int ->
  seed:int ->
  timed_iut ->
  verdict

(** [spec_iut net ~outputs ~seed] — a conforming IUT simulated from the
    spec itself (resolving nondeterminism randomly). *)
val spec_iut :
  Ta.Model.network -> outputs:string list -> seed:int -> timed_iut

(** Faulty wrappers for experiments: *)

(** [mute_iut iut] never produces outputs (timeliness faults are
    detected when the spec forces an output). *)
val mute_iut : timed_iut -> timed_iut

(** [noisy_iut iut ~wrong ~every] replaces each [every]-th output with
    channel [wrong]. *)
val noisy_iut : timed_iut -> wrong:string -> every:int -> timed_iut
