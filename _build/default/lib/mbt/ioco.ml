type counterexample = { trace : string list; bad_obs : Lts.obs }

(* Walk the synchronous product of the suspension automata along the
   spec's suspension traces; at every reachable pair, the implementation's
   observations must be allowed by the spec. *)
let check ~impl ~spec =
  let visited = Hashtbl.create 256 in
  let queue = Queue.create () in
  Queue.push (Lts.initial_set impl, Lts.initial_set spec, []) queue;
  let result = ref (Ok true) in
  (try
     while not (Queue.is_empty queue) do
       let i_set, s_set, rev_trace = Queue.pop queue in
       let key = (i_set, s_set) in
       if not (Hashtbl.mem visited key) then begin
         Hashtbl.replace visited key ();
         let allowed = Lts.out_set spec s_set in
         (* Conformance at this point. *)
         List.iter
           (fun o ->
             if not (List.mem o allowed) then begin
               result :=
                 Error
                   {
                     trace = List.rev rev_trace;
                     bad_obs = o;
                   };
               raise Exit
             end)
           (Lts.out_set impl i_set);
         (* Extend along the spec's suspension traces: inputs the spec
            offers, and observations the spec allows. *)
         List.iter
           (fun a ->
             let s' = Lts.after_input spec s_set a in
             let i' = Lts.after_input impl i_set a in
             (* The testing hypothesis makes i' non-empty; guard anyway. *)
             if s' <> [] && i' <> [] then
               Queue.push (i', s', (a ^ "?") :: rev_trace) queue)
           (Lts.inputs_enabled_in spec s_set);
         List.iter
           (fun o ->
             let s' = Lts.after_obs spec s_set o in
             let i' = Lts.after_obs impl i_set o in
             (* Follow only observations the implementation can produce:
                deeper spec traces that the impl never exhibits cannot
                reveal non-conformance of this impl. *)
             if s' <> [] && i' <> [] then begin
               let label = Format.asprintf "%a" Lts.pp_obs o in
               Queue.push (i', s', label :: rev_trace) queue
             end)
           allowed
       end
     done
   with Exit -> ());
  !result

let conforms ~impl ~spec =
  match check ~impl ~spec with Ok _ -> true | Error _ -> false
