(** Demonstration models for the MBT layer: the classic coffee machine
    (untimed ioco), a software-bus-style protocol (after the Neopost case
    the paper cites), and a timed request/response service for the
    TRON-style online tester. *)

(** {1 Coffee machine} *)

(** Spec: after [coin?], the machine delivers [coffee!] or [tea!]; after
    [button?] without a coin it must stay quiet. *)
val coffee_spec : Lts.t

(** Conforming: always delivers coffee (reduction of nondeterminism). *)
val coffee_impl_good : Lts.t

(** Non-conforming: can deliver [milk!] (unspecified output). *)
val coffee_impl_wrong_drink : Lts.t

(** Non-conforming: may stay quiescent after [coin?]. *)
val coffee_impl_lazy : Lts.t

(** {1 Software bus (subscribe / publish / notify)} *)

(** Spec: after [subscribe?], each [publish?] is followed by exactly one
    [notify!]; [ack!] answers [subscribe?]. *)
val bus_spec : Lts.t

val bus_impl_good : Lts.t

(** Drops every notification (quiescence where output required). *)
val bus_impl_lossy : Lts.t

(** Double notification (extra output after the allowed one). *)
val bus_impl_chatty : Lts.t

(** {1 Timed request/response (for rtioco)} *)

(** Spec network: on [req?] the server answers [resp!] within 2..4 time
    units. Returns the network; inputs = [["req"]], outputs =
    [["resp"]]. *)
val timed_server : unit -> Ta.Model.network

val timed_inputs : string list
val timed_outputs : string list
