module Model = Ta.Model

let i a = Lts.Input a
let o a = Lts.Output a

(* states: 0 idle, 1 paid, 2 served *)
let coffee_spec =
  Lts.make ~n_states:3 ~start:0
    [
      (0, i "coin", 1);
      (0, i "button", 0); (* ignored without payment *)
      (1, i "coin", 1);
      (1, i "button", 1);
      (1, o "coffee", 2);
      (1, o "tea", 2);
      (2, i "coin", 1);
      (2, i "button", 2);
    ]

let coffee_impl_good =
  Lts.make ~n_states:3 ~start:0
    [
      (0, i "coin", 1);
      (0, i "button", 0);
      (1, i "coin", 1);
      (1, i "button", 1);
      (1, o "coffee", 2);
      (2, i "coin", 1);
      (2, i "button", 2);
    ]

let coffee_impl_wrong_drink =
  Lts.make ~n_states:3 ~start:0
    [
      (0, i "coin", 1);
      (0, i "button", 0);
      (1, i "coin", 1);
      (1, i "button", 1);
      (1, o "milk", 2);
      (2, i "coin", 1);
      (2, i "button", 2);
    ]

(* After coin, an internal step may land in a state with no output:
   quiescence where the spec requires a drink. *)
let coffee_impl_lazy =
  Lts.make ~n_states:4 ~start:0
    [
      (0, i "coin", 1);
      (0, i "button", 0);
      (1, Lts.Tau, 3);
      (1, i "coin", 1);
      (1, i "button", 1);
      (1, o "coffee", 2);
      (2, i "coin", 1);
      (2, i "button", 2);
      (3, i "coin", 3);
      (3, i "button", 3);
    ]

(* Software bus: 0 unsubscribed, 1 subscribed-acking, 2 ready,
   3 notifying. *)
let bus_spec =
  Lts.make ~n_states:4 ~start:0
    [
      (0, i "subscribe", 1);
      (0, i "publish", 0); (* dropped when nobody listens *)
      (1, o "ack", 2);
      (1, i "publish", 1);
      (1, i "subscribe", 1);
      (2, i "publish", 3);
      (2, i "subscribe", 2);
      (3, o "notify", 2);
      (3, i "publish", 3);
      (3, i "subscribe", 3);
    ]

let bus_impl_good = bus_spec

let bus_impl_lossy =
  Lts.make ~n_states:4 ~start:0
    [
      (0, i "subscribe", 1);
      (0, i "publish", 0);
      (1, o "ack", 2);
      (1, i "publish", 1);
      (1, i "subscribe", 1);
      (2, i "publish", 3);
      (2, i "subscribe", 2);
      (* Drops notifications nondeterministically. *)
      (3, o "notify", 2);
      (3, Lts.Tau, 2);
      (3, i "publish", 3);
      (3, i "subscribe", 3);
    ]

let bus_impl_chatty =
  Lts.make ~n_states:5 ~start:0
    [
      (0, i "subscribe", 1);
      (0, i "publish", 0);
      (1, o "ack", 2);
      (1, i "publish", 1);
      (1, i "subscribe", 1);
      (2, i "publish", 3);
      (2, i "subscribe", 2);
      (3, o "notify", 4);
      (3, i "publish", 3);
      (3, i "subscribe", 3);
      (* Second notification: out(after publish.notify) must be {delta}. *)
      (4, o "notify", 2);
      (4, i "publish", 4);
      (4, i "subscribe", 4);
    ]

let timed_inputs = [ "req" ]
let timed_outputs = [ "resp" ]

let timed_server () =
  let b = Model.builder () in
  let y = Model.fresh_clock b "y" in
  let req = Model.channel b "req" in
  let resp = Model.channel b "resp" in
  let server = Model.automaton b "Server" in
  let idle = Model.location server "Idle" in
  let busy = Model.location server "Busy" ~invariant:[ Model.clock_le y 4 ] in
  Model.edge server ~src:idle ~dst:busy ~sync:(Model.Receive req)
    ~updates:[ Model.Reset (y, 0) ] ();
  Model.edge server ~src:busy ~dst:idle
    ~clock_guard:[ Model.clock_ge y 2 ]
    ~sync:(Model.Emit resp) ();
  let env = Model.automaton b "Env" in
  let e0 = Model.location env "E" in
  Model.edge env ~src:e0 ~dst:e0 ~sync:(Model.Emit req) ();
  Model.edge env ~src:e0 ~dst:e0 ~sync:(Model.Receive resp) ();
  Model.build b
