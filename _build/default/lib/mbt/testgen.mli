(** Test-case generation and execution (Tretmans' algorithm).

    Test cases are finite trees: stimulate an input, or observe (every
    possible output plus quiescence has a branch; disallowed observations
    lead to [Fail]). Tests generated from a specification are {e sound}
    (conforming implementations never fail) and, in the limit over all
    tests, {e exhaustive} — the properties the paper quotes for the
    ioco theory. *)

type test =
  | Pass
  | Fail
  | Stimulate of string * test
  | Observe of (Lts.obs * test) list
      (** exactly one branch per output of the alphabet, plus [Delta] *)

(** [generate spec ~rng ~depth] — one random test case. *)
val generate : Lts.t -> rng:Random.State.t -> depth:int -> test

(** [generate_suite spec ~seed ~count ~depth]. *)
val generate_suite : Lts.t -> seed:int -> count:int -> depth:int -> test list

(** [generate_all spec ~depth ~max_tests] — the systematic suite: one
    test per choice sequence (stimulate each enabled input, or observe)
    up to [depth]. This realises "exhaustive in the limit": as [depth]
    grows the suite detects every non-conforming implementation.
    Generation stops silently at [max_tests] (default 10_000). *)
val generate_all : ?max_tests:int -> Lts.t -> depth:int -> test list

(** [coverage spec tests] — fraction of the spec's non-tau transitions
    exercised by at least one test path (1.0 = full transition
    coverage). *)
val coverage : Lts.t -> test list -> float

(** Number of stimulate/observe nodes. *)
val size : test -> int

(** {1 Execution against an implementation under test} *)

(** Adapter: the tester's black-box view of the IUT. [observe] blocks
    until an output or (conceptually) a quiescence timeout. *)
type iut = {
  reset : unit -> unit;
  stimulate : string -> unit;
  observe : unit -> Lts.obs;
}

type verdict = V_pass | V_fail

(** [execute test iut] — one run. *)
val execute : test -> iut -> verdict

(** [run_suite tests iut ~repetitions] — a test fails the suite when any
    repetition fails (nondeterministic IUTs need several). Returns
    (passes, fails). *)
val run_suite : test list -> iut -> repetitions:int -> int * int

(** [lts_iut impl ~seed] — simulated implementation: resolves its own
    nondeterminism randomly; inputs outside the current state are ignored
    (input-enabled completion). *)
val lts_iut : Lts.t -> seed:int -> iut
