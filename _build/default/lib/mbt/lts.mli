(** Labelled transition systems with input/output partitioned actions —
    the models of the ioco testing theory (Section V, ref. [28]).

    Inputs are the actions the environment (tester) controls, outputs the
    system's; [Tau] is internal. The suspension view adds quiescence
    ([delta]): the observable absence of outputs. *)

type label = Input of string | Output of string | Tau

type t

(** [make ~n_states ~start transitions] with transitions
    [(src, label, dst)].
    @raise Invalid_argument on out-of-range states. *)
val make : n_states:int -> start:int -> (int * label * int) list -> t

val n_states : t -> int
val start : t -> int
val transitions_from : t -> int -> (label * int) list

(** All input (resp. output) action names occurring in the system. *)
val inputs : t -> string list

val outputs : t -> string list

(** [input_enabled t] — every state accepts every input of the alphabet
    (possibly after internal moves): the ioco testing hypothesis for
    implementations. *)
val input_enabled : t -> bool

(** {1 Suspension semantics over tau-closed state sets} *)

type stateset = int list
(** sorted, tau-closed *)

(** [closure t states] — tau-closure, sorted and deduplicated. *)
val closure : t -> int list -> stateset

val initial_set : t -> stateset

(** [quiescent t s] — state [s] has no output and no tau transition. *)
val quiescent : t -> int -> bool

(** Observations: an output action or quiescence. *)
type obs = Out of string | Delta

(** [out_set t ss] — the observations possible in [ss]. *)
val out_set : t -> stateset -> obs list

(** [after_obs t ss o] — successor set (empty when impossible). *)
val after_obs : t -> stateset -> obs -> stateset

(** [after_input t ss a] — successor set on input [a]. *)
val after_input : t -> stateset -> string -> stateset

(** [inputs_enabled_in t ss] — inputs with a non-empty successor. *)
val inputs_enabled_in : t -> stateset -> string list

(** [to_dot t] — Graphviz rendering (initial state double-penned). *)
val to_dot : t -> string

val pp_label : Format.formatter -> label -> unit
val pp_obs : Format.formatter -> obs -> unit
