type label = Input of string | Output of string | Tau

type t = {
  n_states : int;
  start : int;
  trans : (label * int) list array;
}

let make ~n_states ~start transitions =
  if start < 0 || start >= n_states then invalid_arg "Lts.make: bad start";
  let trans = Array.make n_states [] in
  List.iter
    (fun (src, label, dst) ->
      if src < 0 || src >= n_states || dst < 0 || dst >= n_states then
        invalid_arg "Lts.make: bad transition";
      trans.(src) <- (label, dst) :: trans.(src))
    transitions;
  Array.iteri (fun i l -> trans.(i) <- List.rev l) trans;
  { n_states; start; trans }

let n_states t = t.n_states
let start t = t.start
let transitions_from t s = t.trans.(s)

let action_names t pick =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun ts ->
      List.iter
        (fun (l, _) -> match pick l with Some a -> Hashtbl.replace tbl a () | None -> ())
        ts)
    t.trans;
  List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) tbl [])

let inputs t = action_names t (function Input a -> Some a | Output _ | Tau -> None)
let outputs t = action_names t (function Output a -> Some a | Input _ | Tau -> None)

type stateset = int list

let closure t states =
  let seen = Array.make t.n_states false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter
        (fun (l, dst) -> if l = Tau then visit dst)
        t.trans.(s)
    end
  in
  List.iter visit states;
  let out = ref [] in
  for s = t.n_states - 1 downto 0 do
    if seen.(s) then out := s :: !out
  done;
  !out

let initial_set t = closure t [ t.start ]

let quiescent t s =
  List.for_all
    (fun (l, _) -> match l with Input _ -> true | Output _ | Tau -> false)
    t.trans.(s)

let input_enabled t =
  let alphabet = inputs t in
  let ok = ref true in
  for s = 0 to t.n_states - 1 do
    let set = closure t [ s ] in
    List.iter
      (fun a ->
        let accepts =
          List.exists
            (fun s' ->
              List.exists (fun (l, _) -> l = Input a) t.trans.(s'))
            set
        in
        if not accepts then ok := false)
      alphabet
  done;
  !ok

type obs = Out of string | Delta

let after_label t ss label =
  let next =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (l, dst) -> if l = label then Some dst else None)
          t.trans.(s))
      ss
  in
  closure t next

let out_set t ss =
  let outs =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (l, _) -> match l with Output a -> Some a | Input _ | Tau -> None)
          t.trans.(s))
      ss
    |> List.sort_uniq compare
  in
  let base = List.map (fun a -> Out a) outs in
  if List.exists (quiescent t) ss then base @ [ Delta ] else base

let after_obs t ss = function
  | Out a -> after_label t ss (Output a)
  | Delta -> List.filter (quiescent t) ss

let after_input t ss a = after_label t ss (Input a)

let inputs_enabled_in t ss =
  List.filter (fun a -> after_input t ss a <> []) (inputs t)

let to_dot t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "digraph lts {\n  rankdir=LR;\n";
  for s = 0 to t.n_states - 1 do
    add "  s%d [shape=circle%s];\n" s
      (if s = t.start then ", penwidth=2" else "")
  done;
  for s = 0 to t.n_states - 1 do
    List.iter
      (fun (l, d) ->
        let label =
          match l with
          | Input a -> a ^ "?"
          | Output a -> a ^ "!"
          | Tau -> "tau"
        in
        add "  s%d -> s%d [label=\"%s\"];\n" s d label)
      t.trans.(s)
  done;
  add "}\n";
  Buffer.contents b

let pp_label ppf = function
  | Input a -> Format.fprintf ppf "%s?" a
  | Output a -> Format.fprintf ppf "%s!" a
  | Tau -> Format.pp_print_string ppf "tau"

let pp_obs ppf = function
  | Out a -> Format.fprintf ppf "%s!" a
  | Delta -> Format.pp_print_string ppf "delta"
