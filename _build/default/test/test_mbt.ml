(* Tests for the model-based-testing layer (Section V): suspension
   semantics, exact ioco checking, soundness of generated test suites,
   mutant detection, and the TRON-style online timed tester. *)

module Lts = Mbt.Lts
module Ioco = Mbt.Ioco
module Testgen = Mbt.Testgen
module Rtioco = Mbt.Rtioco
module Demo = Mbt.Demo

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Suspension semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_closure_and_out () =
  let spec = Demo.coffee_spec in
  let s0 = Lts.initial_set spec in
  check "initial quiescent" true (List.mem Lts.Delta (Lts.out_set spec s0));
  let paid = Lts.after_input spec s0 "coin" in
  let out = Lts.out_set spec paid in
  check "coffee offered" true (List.mem (Lts.Out "coffee") out);
  check "tea offered" true (List.mem (Lts.Out "tea") out);
  check "no quiescence after coin" false (List.mem Lts.Delta out)

let test_tau_closure () =
  let lazy_impl = Demo.coffee_impl_lazy in
  let paid = Lts.after_input lazy_impl (Lts.initial_set lazy_impl) "coin" in
  (* The tau to the silent state is inside the closure. *)
  check_int "two states in closure" 2 (List.length paid);
  check "delta possible" true (List.mem Lts.Delta (Lts.out_set lazy_impl paid))

let test_input_enabled () =
  check "spec input-enabled" true (Lts.input_enabled Demo.coffee_spec);
  check "good impl input-enabled" true (Lts.input_enabled Demo.coffee_impl_good);
  (* An LTS missing an input somewhere is flagged. *)
  let partial =
    Lts.make ~n_states:2 ~start:0 [ (0, Lts.Input "a", 1) ]
  in
  check "partial not input-enabled" false (Lts.input_enabled partial)


let test_lts_dot () =
  let dot = Lts.to_dot Demo.coffee_spec in
  check "digraph" true (Astring.String.is_infix ~affix:"digraph lts" dot);
  check "labels" true
    (Astring.String.is_infix ~affix:"coin?" dot
     && Astring.String.is_infix ~affix:"coffee!" dot)

(* ------------------------------------------------------------------ *)
(* ioco                                                                *)
(* ------------------------------------------------------------------ *)

let test_ioco_coffee () =
  check "good ioco spec" true
    (Ioco.conforms ~impl:Demo.coffee_impl_good ~spec:Demo.coffee_spec);
  check "wrong drink not ioco" false
    (Ioco.conforms ~impl:Demo.coffee_impl_wrong_drink ~spec:Demo.coffee_spec);
  check "lazy not ioco" false
    (Ioco.conforms ~impl:Demo.coffee_impl_lazy ~spec:Demo.coffee_spec);
  (* Reduction is allowed, the converse is not: the spec does not conform
     to the deterministic implementation. *)
  check "spec not ioco impl" false
    (Ioco.conforms ~impl:Demo.coffee_spec ~spec:Demo.coffee_impl_good)

let test_ioco_counterexample () =
  match Ioco.check ~impl:Demo.coffee_impl_wrong_drink ~spec:Demo.coffee_spec with
  | Ok _ -> Alcotest.fail "expected counterexample"
  | Error ce ->
    check "bad observation is milk" true (ce.Ioco.bad_obs = Lts.Out "milk");
    check "trace passes through coin" true (List.mem "coin?" ce.Ioco.trace)

let test_ioco_bus () =
  check "good bus" true (Ioco.conforms ~impl:Demo.bus_impl_good ~spec:Demo.bus_spec);
  check "lossy bus not ioco" false
    (Ioco.conforms ~impl:Demo.bus_impl_lossy ~spec:Demo.bus_spec);
  check "chatty bus not ioco" false
    (Ioco.conforms ~impl:Demo.bus_impl_chatty ~spec:Demo.bus_spec)

let test_ioco_reflexive () =
  check "spec ioco itself" true
    (Ioco.conforms ~impl:Demo.coffee_spec ~spec:Demo.coffee_spec);
  check "bus ioco itself" true (Ioco.conforms ~impl:Demo.bus_spec ~spec:Demo.bus_spec)

(* ------------------------------------------------------------------ *)
(* Test generation and execution                                       *)
(* ------------------------------------------------------------------ *)

let suite spec = Testgen.generate_suite spec ~seed:5 ~count:60 ~depth:8

let test_generation_shape () =
  let tests = suite Demo.coffee_spec in
  check_int "sixty tests" 60 (List.length tests);
  check "tests are nontrivial" true
    (List.exists (fun t -> Testgen.size t > 3) tests)

let test_soundness () =
  (* Sound: a conforming implementation never fails a generated test,
     whatever its internal choices. *)
  let tests = suite Demo.coffee_spec in
  let iut = Testgen.lts_iut Demo.coffee_impl_good ~seed:3 in
  let passes, fails = Testgen.run_suite tests iut ~repetitions:10 in
  check_int "no failures on conforming impl" 0 fails;
  check_int "all pass" 60 passes;
  (* The spec, as its own (nondeterministic) implementation, passes too. *)
  let self = Testgen.lts_iut Demo.coffee_spec ~seed:4 in
  let _, fails_self = Testgen.run_suite tests self ~repetitions:10 in
  check_int "spec-as-impl never fails" 0 fails_self

let test_mutant_detection () =
  let tests = suite Demo.coffee_spec in
  let try_mutant impl =
    let iut = Testgen.lts_iut impl ~seed:9 in
    let _, fails = Testgen.run_suite tests iut ~repetitions:20 in
    fails > 0
  in
  check "wrong drink detected" true (try_mutant Demo.coffee_impl_wrong_drink);
  check "lazy impl detected" true (try_mutant Demo.coffee_impl_lazy)

let test_bus_mutants () =
  let tests = Testgen.generate_suite Demo.bus_spec ~seed:17 ~count:80 ~depth:10 in
  let run impl seed =
    let iut = Testgen.lts_iut impl ~seed in
    snd (Testgen.run_suite tests iut ~repetitions:20)
  in
  check_int "good bus passes" 0 (run Demo.bus_impl_good 1);
  check "lossy detected" true (run Demo.bus_impl_lossy 2 > 0);
  check "chatty detected" true (run Demo.bus_impl_chatty 3 > 0)


let test_generate_all () =
  let tests = Testgen.generate_all Demo.coffee_spec ~depth:5 in
  check "systematic suite nonempty" true (List.length tests > 10);
  (* Soundness of the exhaustive suite too. *)
  let iut = Testgen.lts_iut Demo.coffee_impl_good ~seed:21 in
  let _, fails = Testgen.run_suite tests iut ~repetitions:5 in
  check_int "exhaustive suite sound" 0 fails;
  (* And it detects both mutants. *)
  let detects impl seed =
    let iut = Testgen.lts_iut impl ~seed in
    snd (Testgen.run_suite tests iut ~repetitions:20) > 0
  in
  check "detects wrong drink" true (detects Demo.coffee_impl_wrong_drink 22);
  check "detects lazy" true (detects Demo.coffee_impl_lazy 23)

let test_generate_all_capped () =
  let tests = Testgen.generate_all ~max_tests:7 Demo.bus_spec ~depth:8 in
  check "cap respected" true (List.length tests <= 7)

let test_coverage () =
  (* The exhaustive suite covers every non-tau transition; a single
     shallow test does not. *)
  let full = Testgen.generate_all Demo.coffee_spec ~depth:6 in
  check "full coverage" true (Testgen.coverage Demo.coffee_spec full >= 0.999);
  let one = Testgen.generate_suite Demo.coffee_spec ~seed:1 ~count:1 ~depth:1 in
  check "shallow test covers little" true
    (Testgen.coverage Demo.coffee_spec one < 0.999);
  check "coverage grows with suites" true
    (Testgen.coverage Demo.coffee_spec full
     >= Testgen.coverage Demo.coffee_spec one)

(* ------------------------------------------------------------------ *)
(* rtioco / TRON                                                       *)
(* ------------------------------------------------------------------ *)

let timed_ctx () =
  let net = Demo.timed_server () in
  (net, Demo.timed_inputs, Demo.timed_outputs)

let test_rtioco_conforming () =
  let net, inputs, outputs = timed_ctx () in
  for seed = 1 to 5 do
    let iut = Rtioco.spec_iut net ~outputs ~seed in
    match Rtioco.test net ~inputs ~outputs ~rounds:60 ~seed iut with
    | Rtioco.T_pass _ -> ()
    | Rtioco.T_fail { round; reason } ->
      Alcotest.failf "conforming IUT failed at round %d: %s" round reason
  done

let test_rtioco_mute () =
  let net, inputs, outputs = timed_ctx () in
  let iut = Rtioco.mute_iut (Rtioco.spec_iut net ~outputs ~seed:2) in
  match Rtioco.test net ~inputs ~outputs ~rounds:200 ~seed:2 iut with
  | Rtioco.T_fail { reason; _ } ->
    check "timeliness fault reported" true
      (Astring.String.is_infix ~affix:"silent" reason)
  | Rtioco.T_pass _ -> Alcotest.fail "mute IUT must fail"

let test_rtioco_noisy () =
  let net, inputs, outputs = timed_ctx () in
  let iut =
    Rtioco.noisy_iut (Rtioco.spec_iut net ~outputs ~seed:5) ~wrong:"nack" ~every:1
  in
  match Rtioco.test net ~inputs ~outputs ~rounds:200 ~seed:5 iut with
  | Rtioco.T_fail { reason; _ } ->
    check "wrong output reported" true
      (Astring.String.is_infix ~affix:"unexpected output" reason)
  | Rtioco.T_pass _ -> Alcotest.fail "noisy IUT must fail"

let () =
  Alcotest.run "mbt"
    [
      ( "suspension",
        [
          Alcotest.test_case "closure/out" `Quick test_closure_and_out;
          Alcotest.test_case "tau closure" `Quick test_tau_closure;
          Alcotest.test_case "input enabled" `Quick test_input_enabled;
          Alcotest.test_case "dot export" `Quick test_lts_dot;
        ] );
      ( "ioco",
        [
          Alcotest.test_case "coffee" `Quick test_ioco_coffee;
          Alcotest.test_case "counterexample" `Quick test_ioco_counterexample;
          Alcotest.test_case "bus" `Quick test_ioco_bus;
          Alcotest.test_case "reflexive" `Quick test_ioco_reflexive;
        ] );
      ( "testgen",
        [
          Alcotest.test_case "shape" `Quick test_generation_shape;
          Alcotest.test_case "soundness" `Quick test_soundness;
          Alcotest.test_case "mutants" `Quick test_mutant_detection;
          Alcotest.test_case "bus mutants" `Quick test_bus_mutants;
          Alcotest.test_case "generate all" `Quick test_generate_all;
          Alcotest.test_case "generate all capped" `Quick test_generate_all_capped;
          Alcotest.test_case "coverage" `Quick test_coverage;
        ] );
      ( "rtioco",
        [
          Alcotest.test_case "conforming passes" `Quick test_rtioco_conforming;
          Alcotest.test_case "mute fails" `Quick test_rtioco_mute;
          Alcotest.test_case "noisy fails" `Quick test_rtioco_noisy;
        ] );
    ]
