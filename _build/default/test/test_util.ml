(* Tests for the shared utility substrate: the binary heap behind the
   priced Dijkstra and Tarjan's SCC behind the WCET/liveness passes. *)

module Pqueue = Quant_util.Pqueue
module Scc = Quant_util.Scc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Priority queue                                                      *)
(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter
    (fun (p, v) -> Pqueue.push q ~priority:p v)
    [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ];
  check_int "length" 5 (Pqueue.length q);
  let rec drain acc =
    match Pqueue.pop_min q with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  check "min-first order" true (drain [] = [ "a"; "b"; "c"; "d"; "e" ]);
  check "empty after drain" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:7 v) [ 1; 2; 3; 4 ];
  let rec drain acc =
    match Pqueue.pop_min q with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  check "ties pop in insertion order" true (drain [] = [ 1; 2; 3; 4 ])

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted priority order" ~count:300
    QCheck.(list (int_range (-1000) 1000))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q ~priority:p p) priorities;
      let rec drain acc =
        match Pqueue.pop_min q with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      let drained = drain [] in
      drained = List.sort compare priorities)

let test_pqueue_interleaved () =
  (* Pushes interleaved with pops must still respect the heap order. *)
  let q = Pqueue.create () in
  Pqueue.push q ~priority:10 10;
  Pqueue.push q ~priority:1 1;
  (match Pqueue.pop_min q with
   | Some (1, 1) -> ()
   | _ -> Alcotest.fail "expected 1");
  Pqueue.push q ~priority:5 5;
  Pqueue.push q ~priority:0 0;
  check "min after interleaving" true (Pqueue.pop_min q = Some (0, 0));
  check "then 5" true (Pqueue.pop_min q = Some (5, 5));
  check "then 10" true (Pqueue.pop_min q = Some (10, 10))

(* ------------------------------------------------------------------ *)
(* Strongly connected components                                       *)
(* ------------------------------------------------------------------ *)

let scc_of edges n =
  let succs = Array.make n [] in
  List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
  Scc.compute ~n ~succs:(fun v -> succs.(v))

let test_scc_cycle () =
  (* 0 -> 1 -> 2 -> 0 is one component; 3 alone. *)
  let comp, n = scc_of [ (0, 1); (1, 2); (2, 0); (2, 3) ] 4 in
  check_int "two components" 2 n;
  check "cycle collapsed" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  check "sink separate" true (comp.(3) <> comp.(0))

let test_scc_dag_order () =
  (* In a DAG every node is its own component and edges point from
     higher to lower component ids (reverse topological numbering). *)
  let edges = [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let comp, n = scc_of edges 4 in
  check_int "four components" 4 n;
  List.iter
    (fun (a, b) -> check "edge decreases comp id" true (comp.(a) > comp.(b)))
    edges

let test_scc_self_loop () =
  let comp, n = scc_of [ (0, 0); (0, 1) ] 2 in
  check_int "self loop is its own scc" 2 n;
  check "distinct" true (comp.(0) <> comp.(1))

let prop_scc_sound =
  (* Random graphs: (a) mutually reachable nodes share a component;
     (b) edges never increase the component id (reverse topological). *)
  QCheck.Test.make ~name:"scc components consistent with reachability"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (seed, n) ->
             let rng = Random.State.make [| seed |] in
             let edges = ref [] in
             for _ = 1 to 2 * n do
               edges :=
                 (Random.State.int rng n, Random.State.int rng n) :: !edges
             done;
             (!edges, n))
           (pair (int_bound 1_000_000) (int_range 2 12)))
       ~print:(fun (edges, n) ->
         Printf.sprintf "n=%d edges=%s" n
           (String.concat ","
              (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges))))
    (fun (edges, n) ->
      let succs = Array.make n [] in
      List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
      let comp, _ = Scc.compute ~n ~succs:(fun v -> succs.(v)) in
      (* Reachability matrix by DFS. *)
      let reach = Array.make_matrix n n false in
      for s = 0 to n - 1 do
        let rec visit v =
          if not reach.(s).(v) then begin
            reach.(s).(v) <- true;
            List.iter visit succs.(v)
          end
        in
        List.iter visit succs.(s)
      done;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if a <> b then begin
            let mutually = reach.(a).(b) && reach.(b).(a) in
            if mutually && comp.(a) <> comp.(b) then ok := false;
            if (not mutually) && comp.(a) = comp.(b) then ok := false
          end
        done
      done;
      List.iter
        (fun (a, b) -> if comp.(a) < comp.(b) then ok := false)
        edges;
      !ok)

let () =
  let qtests =
    List.map QCheck_alcotest.to_alcotest [ prop_pqueue_sorts; prop_scc_sound ]
  in
  Alcotest.run "util"
    [
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_pqueue_interleaved;
        ] );
      ( "scc",
        [
          Alcotest.test_case "cycle" `Quick test_scc_cycle;
          Alcotest.test_case "dag order" `Quick test_scc_dag_order;
          Alcotest.test_case "self loop" `Quick test_scc_self_loop;
        ] );
      ("properties", qtests);
    ]
