(* Tests for the digital-clocks substrate, priced reachability (CORA) and
   timed games (TIGA), including cross-validation of the digital engine
   against the zone engine on the train-gate model. *)

module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store
module Checker = Ta.Checker
module Zone_graph = Ta.Zone_graph
module Train_gate = Ta.Train_gate
module Digital = Discrete.Digital

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Digital semantics                                                   *)
(* ------------------------------------------------------------------ *)

let test_rejects_strict () =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let l0 = Model.location p "A" in
  let l1 = Model.location p "B" in
  Model.edge p ~src:l0 ~dst:l1 ~clock_guard:[ Model.clock_gt x 1 ] ();
  let net = Model.build b in
  check "strict model detected" false (Digital.is_closed net);
  try
    ignore (Digital.initial net);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let discrete_key_set keys =
  let tbl = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keys;
  tbl

let test_cross_validation () =
  (* The reachable (locations, store) sets of the zone engine and the
     digital engine must coincide on closed diagonal-free models. *)
  let net = Train_gate.make ~n_trains:2 in
  let zone_keys =
    discrete_key_set
      (List.map Zone_graph.discrete_key (Checker.reachable_states net))
  in
  let digital_keys = Digital.discrete_parts (Digital.explore net) in
  let subset a b missing =
    Hashtbl.iter
      (fun k () -> if not (Hashtbl.mem b k) then incr missing)
      a
  in
  let missing_in_digital = ref 0 and missing_in_zone = ref 0 in
  subset zone_keys digital_keys missing_in_digital;
  subset digital_keys zone_keys missing_in_zone;
  check_int "zone keys all in digital" 0 !missing_in_digital;
  check_int "digital keys all in zone" 0 !missing_in_zone;
  check "nontrivial state space" true (Hashtbl.length zone_keys > 20)

let test_digital_delay_saturation () =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let l0 = Model.location p "A" in
  let l1 = Model.location p "B" in
  Model.edge p ~src:l0 ~dst:l1 ~clock_guard:[ Model.clock_ge x 3 ] ();
  let net = Model.build b in
  let g = Digital.explore net in
  (* Clock saturates at max_const + 1 = 4, so states are finite. *)
  check "finite graph" true (Array.length g.Digital.states <= 10);
  let has_b =
    Array.exists (fun st -> st.Digital.dlocs.(0) = l1) g.Digital.states
  in
  check "B reached" true has_b

(* Random closed diagonal-free networks: the zone engine and the digital
   engine must agree on the reachable discrete parts. *)
let random_closed_net rng =
  let n_autos = 1 + Random.State.int rng 2 in
  let b = Model.builder () in
  let chan = if n_autos = 2 then Some (Model.channel b "c") else None in
  for a = 0 to n_autos - 1 do
    let x = Model.fresh_clock b (Printf.sprintf "x%d" a) in
    let pa = Model.automaton b (Printf.sprintf "P%d" a) in
    let n_locs = 2 + Random.State.int rng 2 in
    let locs =
      Array.init n_locs (fun l ->
          let invariant =
            if Random.State.int rng 3 = 0 then
              [ Model.clock_le x (1 + Random.State.int rng 3) ]
            else []
          in
          Model.location pa (Printf.sprintf "l%d" l) ~invariant)
    in
    let n_edges = 1 + Random.State.int rng 4 in
    for _ = 1 to n_edges do
      let src = locs.(Random.State.int rng n_locs) in
      let dst = locs.(Random.State.int rng n_locs) in
      let clock_guard =
        List.concat
          [
            (if Random.State.bool rng then
               [ Model.clock_ge x (Random.State.int rng 4) ]
             else []);
            (if Random.State.int rng 3 = 0 then
               [ Model.clock_le x (1 + Random.State.int rng 3) ]
             else []);
          ]
      in
      let updates =
        if Random.State.bool rng then [ Model.Reset (x, 0) ] else []
      in
      let sync =
        match chan with
        | Some c when Random.State.int rng 3 = 0 ->
          if a = 0 then Model.Emit c else Model.Receive c
        | Some _ | None -> Model.Tau
      in
      Model.edge pa ~src ~dst ~clock_guard ~updates ~sync ()
    done
  done;
  Model.build b

let prop_random_cross_validation =
  QCheck.Test.make ~name:"random TA: zone and digital engines agree"
    ~count:150
    (QCheck.make
       QCheck.Gen.(
         map
           (fun seed -> random_closed_net (Random.State.make [| seed |]))
           (int_bound 1_000_000))
       ~print:(fun net ->
         Printf.sprintf "net with %d automata" (Array.length net.Model.automata)))
    (fun net ->
      let zone_keys =
        discrete_key_set
          (List.map Zone_graph.discrete_key (Checker.reachable_states net))
      in
      let digital_keys = Digital.discrete_parts (Digital.explore net) in
      Hashtbl.length zone_keys = Hashtbl.length digital_keys
      && Hashtbl.fold
           (fun k () acc -> acc && Hashtbl.mem digital_keys k)
           zone_keys true)

(* ------------------------------------------------------------------ *)
(* Priced (CORA)                                                       *)
(* ------------------------------------------------------------------ *)

(* A (rate r) --[x>=2, cost k]--> B. Min cost = 2r + k. *)
let priced_line ~rate ~edge_cost =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let l0 = Model.location p "A" in
  let l1 = Model.location p "B" in
  Model.edge p ~src:l0 ~dst:l1 ~clock_guard:[ Model.clock_ge x 2 ] ();
  let net = Model.build b in
  let cm =
    {
      Priced.loc_rate = (fun _ l -> if l = l0 then rate else 0);
      Priced.move_cost = (fun _ -> edge_cost);
    }
  in
  let target (st : Digital.dstate) = st.Digital.dlocs.(0) = l1 in
  (net, cm, target)

let test_min_cost_line () =
  let net, cm, target = priced_line ~rate:3 ~edge_cost:5 in
  match Priced.min_cost_reach net cm ~target with
  | Some o ->
    check_int "2*3+5" 11 o.Priced.cost;
    check_int "steps: two delays + edge" 3 (List.length o.Priced.steps)
  | None -> Alcotest.fail "target unreachable"

let test_min_cost_chooses_cheaper () =
  (* Two routes to B: wait 2 at rate 3 (cost 6), or an immediate edge of
     cost 100: Dijkstra must take the wait. *)
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let l0 = Model.location p "A" in
  let l1 = Model.location p "B" in
  Model.edge p ~src:l0 ~dst:l1 ~clock_guard:[ Model.clock_ge x 2 ] ();
  Model.edge p ~src:l0 ~dst:l1 ~guard:(Expr.Int 1) ();
  let net = Model.build b in
  let cm =
    {
      Priced.loc_rate = (fun _ l -> if l = l0 then 3 else 0);
      Priced.move_cost =
        (fun mv ->
          (* the expensive edge is the one with a data guard *)
          let (_, e) = List.hd mv.Zone_graph.participants in
          if e.Model.data_guard <> None then 100 else 0);
    }
  in
  let target (st : Digital.dstate) = st.Digital.dlocs.(0) = l1 in
  match Priced.min_cost_reach net cm ~target with
  | Some o -> check_int "cheap route" 6 o.Priced.cost
  | None -> Alcotest.fail "unreachable"

let test_min_time_train_gate () =
  let net = Train_gate.make ~n_trains:2 in
  let cross = Model.loc_index net 0 "Cross" in
  let target (st : Digital.dstate) = st.Digital.dlocs.(0) = cross in
  match Priced.min_time_reach net ~target with
  | Some o -> check_int "fastest crossing at x=10" 10 o.Priced.cost
  | None -> Alcotest.fail "unreachable"

(* WCET-style: basic blocks with bounded duration; worst case = sum of
   upper bounds along the longest branch. *)
let test_max_cost_wcet () =
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let entry = Model.location p "entry" ~invariant:[ Model.clock_le x 2 ] in
  let fast = Model.location p "fast" ~invariant:[ Model.clock_le x 3 ] in
  let slow = Model.location p "slow" ~invariant:[ Model.clock_le x 7 ] in
  let exit_l = Model.location p "exit" in
  Model.edge p ~src:entry ~dst:fast ~clock_guard:[ Model.clock_ge x 1 ]
    ~updates:[ Model.Reset (x, 0) ] ();
  Model.edge p ~src:entry ~dst:slow ~clock_guard:[ Model.clock_ge x 1 ]
    ~updates:[ Model.Reset (x, 0) ] ();
  Model.edge p ~src:fast ~dst:exit_l ~clock_guard:[ Model.clock_ge x 1 ] ();
  Model.edge p ~src:slow ~dst:exit_l ~clock_guard:[ Model.clock_ge x 2 ] ();
  let net = Model.build b in
  let cm = { Priced.free with Priced.loc_rate = (fun a _ -> if a = 0 then 1 else 0) } in
  let target (st : Digital.dstate) = st.Digital.dlocs.(0) = exit_l in
  (match Priced.max_cost_reach net cm ~target with
   | `Cost (c, _) -> check_int "WCET = 2 + 7" 9 c
   | `Unbounded -> Alcotest.fail "unexpected unbounded"
   | `Unreachable -> Alcotest.fail "unexpected unreachable");
  (* Min time = 1 + 1 (entry then fast branch). *)
  match Priced.min_time_reach net ~target with
  | Some o -> check_int "BCET = 2" 2 o.Priced.cost
  | None -> Alcotest.fail "unreachable"

let test_max_cost_unbounded () =
  (* A positive-rate loop that can defer the target forever. *)
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let l0 = Model.location p "A" in
  let l1 = Model.location p "B" in
  Model.edge p ~src:l0 ~dst:l0 ~clock_guard:[ Model.clock_ge x 1 ]
    ~updates:[ Model.Reset (x, 0) ] ();
  Model.edge p ~src:l0 ~dst:l1 ();
  let net = Model.build b in
  let cm = { Priced.free with Priced.loc_rate = (fun a _ -> if a = 0 then 1 else 0) } in
  let target (st : Digital.dstate) = st.Digital.dlocs.(0) = l1 in
  match Priced.max_cost_reach net cm ~target with
  | `Unbounded -> ()
  | `Cost _ | `Unreachable -> Alcotest.fail "expected unbounded WCET"


(* ------------------------------------------------------------------ *)
(* Job-shop scheduling (CORA's optimization application)               *)
(* ------------------------------------------------------------------ *)

module Jobshop = Priced.Jobshop

let test_jobshop_single_job () =
  (* One job, durations sum. *)
  let inst = { Jobshop.machines = 2; jobs = [ [ (0, 2); (1, 3) ] ] } in
  match Jobshop.optimal inst with
  | Some s -> check_int "sum of durations" 5 s.Jobshop.makespan
  | None -> Alcotest.fail "infeasible"

let test_jobshop_parallel () =
  (* Two independent jobs on different machines run in parallel. *)
  let inst = { Jobshop.machines = 2; jobs = [ [ (0, 4) ]; [ (1, 3) ] ] } in
  match Jobshop.optimal inst with
  | Some s -> check_int "max of durations" 4 s.Jobshop.makespan
  | None -> Alcotest.fail "infeasible"

let test_jobshop_contention () =
  (* Known-optimal instance: machine 1's total load of 5 is the bound and
     a 5-makespan schedule exists. *)
  let inst =
    { Jobshop.machines = 2; jobs = [ [ (0, 2); (1, 2) ]; [ (1, 3); (0, 1) ] ] }
  in
  check_int "lower bound" 5 (Jobshop.makespan_lower_bound inst);
  match Jobshop.optimal inst with
  | Some s ->
    check_int "optimal makespan" 5 s.Jobshop.makespan;
    check "schedule steps recorded" true (List.length s.Jobshop.steps > 0)
  | None -> Alcotest.fail "infeasible"

let test_jobshop_exclusive () =
  (* Same machine serialises: two 3-unit tasks on one machine take 6. *)
  let inst = { Jobshop.machines = 1; jobs = [ [ (0, 3) ]; [ (0, 3) ] ] } in
  match Jobshop.optimal inst with
  | Some s -> check_int "serialised" 6 s.Jobshop.makespan
  | None -> Alcotest.fail "infeasible"

let test_jobshop_respects_bound () =
  (* The optimum never undercuts the admissible lower bound. *)
  List.iter
    (fun inst ->
      match Jobshop.optimal inst with
      | Some s ->
        check "optimum >= lower bound" true
          (s.Jobshop.makespan >= Jobshop.makespan_lower_bound inst)
      | None -> Alcotest.fail "infeasible")
    [
      { Jobshop.machines = 2; jobs = [ [ (0, 1); (1, 2) ]; [ (1, 1); (0, 2) ] ] };
      { Jobshop.machines = 3; jobs = [ [ (0, 2); (2, 1) ]; [ (1, 2) ]; [ (2, 2); (0, 1) ] ] };
    ]

let test_jobshop_validation () =
  (try
     ignore (Jobshop.optimal { Jobshop.machines = 1; jobs = [ [ (5, 1) ] ] });
     Alcotest.fail "expected bad machine"
   with Invalid_argument _ -> ());
  try
    ignore (Jobshop.optimal { Jobshop.machines = 1; jobs = [ [ (0, 0) ] ] });
    Alcotest.fail "expected bad duration"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Games (TIGA)                                                        *)
(* ------------------------------------------------------------------ *)

(* Tiny game: env owns an edge to Bad; controller cannot win safety. If
   the same edge is controllable instead, the controller just never takes
   it and wins. *)
let tiny_game ~env_owns_bad =
  let b = Model.builder () in
  let p = Model.automaton b "P" in
  let good = Model.location p "Good" in
  let bad = Model.location p "Bad" in
  Model.edge p ~src:good ~dst:bad ~ctrl:(not env_owns_bad) ();
  let net = Model.build b in
  let safe (st : Digital.dstate) = st.Digital.dlocs.(0) = good in
  (net, safe)

let test_tiny_safety_game () =
  let net, safe = tiny_game ~env_owns_bad:true in
  let s = Games.solve net (Games.Safety safe) in
  check "env-owned bad edge loses" false s.Games.initial_winning;
  let net2, safe2 = tiny_game ~env_owns_bad:false in
  let s2 = Games.solve net2 (Games.Safety safe2) in
  check "ctrl-owned bad edge wins" true s2.Games.initial_winning;
  check "closed loop avoids bad" true (Games.closed_loop_safe s2 ~safe:safe2)

let test_tiny_reach_game () =
  (* Controller owns the edge to the target: wins reachability. *)
  let b = Model.builder () in
  let x = Model.fresh_clock b "x" in
  let p = Model.automaton b "P" in
  let a = Model.location p "A" ~invariant:[ Model.clock_le x 3 ] in
  let g = Model.location p "G" in
  Model.edge p ~src:a ~dst:g ~clock_guard:[ Model.clock_ge x 1 ] ();
  let net = Model.build b in
  let target (st : Digital.dstate) = st.Digital.dlocs.(0) = g in
  let s = Games.solve net (Games.Reach target) in
  check "reach winnable" true s.Games.initial_winning;
  check "closed loop reaches" true (Games.closed_loop_reaches s ~target)

let test_tiny_reach_env_blocks () =
  (* Only the environment can move to the target: conservative semantics
     says the controller cannot force it (env may idle forever: location
     has no invariant). *)
  let b = Model.builder () in
  let p = Model.automaton b "P" in
  let a = Model.location p "A" in
  let g = Model.location p "G" in
  Model.edge p ~src:a ~dst:g ~ctrl:false ();
  let net = Model.build b in
  let target (st : Digital.dstate) = st.Digital.dlocs.(0) = g in
  let s = Games.solve net (Games.Reach target) in
  check "env-owned target not forceable" false s.Games.initial_winning

let test_train_game_safety () =
  let net = Games.Train_game.make ~n_trains:2 () in
  let safe = Games.Train_game.safe net in
  (* Without control, the raw game graph contains unsafe states. *)
  let g = Digital.explore net in
  let unsafe_reachable =
    Array.exists (fun st -> not (safe st)) g.Digital.states
  in
  check "uncontrolled game can collide" true unsafe_reachable;
  (* TIGA synthesis: the controller wins and the closed loop is safe. *)
  let s = Games.solve net (Games.Safety safe) in
  check "synthesis succeeds" true s.Games.initial_winning;
  check "closed loop safe" true (Games.closed_loop_safe s ~safe);
  check "winning region nontrivial" true
    (Games.winning_count s > 0
     && Games.winning_count s < Array.length s.Games.graph.Digital.states)

let test_train_game_reach () =
  let net = Games.Train_game.make ~n_trains:2 () in
  let target = Games.Train_game.all_crossed_once net in
  let s = Games.solve net (Games.Reach target) in
  check "all-cross objective winnable" true s.Games.initial_winning;
  check "closed loop reaches" true (Games.closed_loop_reaches s ~target)

let () =
  Alcotest.run "discrete-priced-games"
    [
      ( "digital",
        [
          Alcotest.test_case "rejects strict" `Quick test_rejects_strict;
          Alcotest.test_case "cross-validation vs zones" `Slow
            test_cross_validation;
          Alcotest.test_case "saturation" `Quick test_digital_delay_saturation;
          QCheck_alcotest.to_alcotest prop_random_cross_validation;
        ] );
      ( "priced",
        [
          Alcotest.test_case "min cost line" `Quick test_min_cost_line;
          Alcotest.test_case "chooses cheaper" `Quick test_min_cost_chooses_cheaper;
          Alcotest.test_case "min time train-gate" `Slow test_min_time_train_gate;
          Alcotest.test_case "wcet" `Quick test_max_cost_wcet;
          Alcotest.test_case "wcet unbounded" `Quick test_max_cost_unbounded;
        ] );
      ( "jobshop",
        [
          Alcotest.test_case "single job" `Quick test_jobshop_single_job;
          Alcotest.test_case "parallel" `Quick test_jobshop_parallel;
          Alcotest.test_case "contention" `Quick test_jobshop_contention;
          Alcotest.test_case "exclusive" `Quick test_jobshop_exclusive;
          Alcotest.test_case "bound respected" `Quick test_jobshop_respects_bound;
          Alcotest.test_case "validation" `Quick test_jobshop_validation;
        ] );
      ( "games",
        [
          Alcotest.test_case "tiny safety" `Quick test_tiny_safety_game;
          Alcotest.test_case "tiny reach" `Quick test_tiny_reach_game;
          Alcotest.test_case "env blocks reach" `Quick test_tiny_reach_env_blocks;
          Alcotest.test_case "train game safety" `Slow test_train_game_safety;
          Alcotest.test_case "train game reach" `Slow test_train_game_reach;
        ] );
    ]
