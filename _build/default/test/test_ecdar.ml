(* Tests for the ECDAR layer: timed I/O refinement checking and
   consistency. *)

module Model = Ta.Model

let check = Alcotest.(check bool)

(* A request/response server answering within [lo, hi], closed with an
   environment that may always send requests. When [accept_req] is false
   the server never accepts requests (for input contravariance tests). *)
let server ?(accept_req = true) ~lo ~hi () =
  let b = Model.builder () in
  let y = Model.fresh_clock b "y" in
  let req = Model.channel b "req" in
  let resp = Model.channel b "resp" in
  let s = Model.automaton b "Server" in
  let idle = Model.location s "Idle" in
  let busy = Model.location s "Busy" ~invariant:[ Model.clock_le y hi ] in
  if accept_req then
    Model.edge s ~src:idle ~dst:busy ~sync:(Model.Receive req)
      ~updates:[ Model.Reset (y, 0) ] ();
  Model.edge s ~src:busy ~dst:idle
    ~clock_guard:[ Model.clock_ge y lo ]
    ~sync:(Model.Emit resp) ();
  let env = Model.automaton b "Env" in
  let e0 = Model.location env "E" in
  Model.edge env ~src:e0 ~dst:e0 ~sync:(Model.Emit req) ();
  Model.edge env ~src:e0 ~dst:e0 ~sync:(Model.Receive resp) ();
  Ecdar.make (Model.build b) ~inputs:[ "req" ] ~outputs:[ "resp" ]

let test_refines_tighter () =
  let tight = server ~lo:2 ~hi:4 () in
  let loose = server ~lo:1 ~hi:5 () in
  let r = Ecdar.refines ~impl:tight ~spec:loose in
  check "[2,4] refines [1,5]" true r.Ecdar.refines;
  let r' = Ecdar.refines ~impl:loose ~spec:tight in
  check "[1,5] does not refine [2,4]" false r'.Ecdar.refines;
  check "witness produced" true (r'.Ecdar.witness <> None)

let test_refines_reflexive () =
  let s = server ~lo:2 ~hi:4 () in
  check "reflexive" true (Ecdar.refines ~impl:s ~spec:s).Ecdar.refines

let test_input_contravariance () =
  let spec = server ~lo:2 ~hi:4 () in
  let deaf = server ~accept_req:false ~lo:2 ~hi:4 () in
  let r = Ecdar.refines ~impl:deaf ~spec in
  check "refusing a spec input breaks refinement" false r.Ecdar.refines;
  (* The other way: the spec of the deaf server admits fewer inputs, so a
     responsive implementation may refine it. *)
  let r' = Ecdar.refines ~impl:spec ~spec:deaf in
  check "responsive refines deaf" true r'.Ecdar.refines

let test_alphabet_mismatch () =
  let s = server ~lo:2 ~hi:4 () in
  let other =
    { s with Ecdar.inputs = [ "request" ] }
  in
  try
    ignore (Ecdar.refines ~impl:s ~spec:other);
    Alcotest.fail "expected alphabet error"
  with Invalid_argument _ -> ()

let test_consistency () =
  check "well-formed server consistent" true
    (Ecdar.consistent (server ~lo:2 ~hi:4 ()));
  (* Invariant forces y <= 4 but the response needs y >= 5: timelock. *)
  check "contradictory bounds inconsistent" false
    (Ecdar.consistent (server ~lo:5 ~hi:4 ()))


(* An open client half: emits req, waits for resp. *)
let client ~name () =
  let b = Model.builder () in
  let z = Model.fresh_clock b "z" in
  let req = Model.channel b "req" in
  let resp = Model.channel b "resp" in
  let c = Model.automaton b name in
  let idle = Model.location c "CIdle" ~invariant:[ Model.clock_le z 6 ] in
  let wait = Model.location c "CWait" ~invariant:[ Model.clock_le z 6 ] in
  Model.edge c ~src:idle ~dst:wait
    ~clock_guard:[ Model.clock_ge z 1 ]
    ~sync:(Model.Emit req)
    ~updates:[ Model.Reset (z, 0) ] ();
  Model.edge c ~src:wait ~dst:idle ~sync:(Model.Receive resp)
    ~updates:[ Model.Reset (z, 0) ] ();
  Ecdar.make (Model.build b) ~inputs:[ "resp" ] ~outputs:[ "req" ]

(* An open server half (no environment component). *)
let server_half ~lo ~hi () =
  let b = Model.builder () in
  let y = Model.fresh_clock b "y" in
  let req = Model.channel b "req" in
  let resp = Model.channel b "resp" in
  let s = Model.automaton b "Server" in
  let idle = Model.location s "Idle" in
  let busy = Model.location s "Busy" ~invariant:[ Model.clock_le y hi ] in
  Model.edge s ~src:idle ~dst:busy ~sync:(Model.Receive req)
    ~updates:[ Model.Reset (y, 0) ] ();
  Model.edge s ~src:busy ~dst:idle
    ~clock_guard:[ Model.clock_ge y lo ]
    ~sync:(Model.Emit resp) ();
  Ecdar.make (Model.build b) ~inputs:[ "req" ] ~outputs:[ "resp" ]

let test_compose () =
  let composite =
    Ecdar.compose (client ~name:"Client" ()) (server_half ~lo:2 ~hi:4 ())
  in
  check "composite outputs" true
    (List.sort compare composite.Ecdar.outputs = [ "req"; "resp" ]);
  check "no inputs left" true (composite.Ecdar.inputs = []);
  check "composite consistent" true (Ecdar.consistent composite);
  check "composite refines itself" true
    (Ecdar.refines ~impl:composite ~spec:composite).Ecdar.refines

let test_compose_rejects_shared_outputs () =
  let a = server ~lo:2 ~hi:4 () in
  try
    ignore (Ecdar.compose a a);
    Alcotest.fail "expected shared-output error"
  with Invalid_argument _ -> ()

let test_conjunction () =
  let tight = server ~lo:2 ~hi:4 () in
  let loose = server ~lo:1 ~hi:5 () in
  let mid = server ~lo:2 ~hi:5 () in
  check "tight refines both" true
    (Ecdar.refines_conjunction ~impl:tight ~specs:[ loose; mid ]);
  check "mid fails the conjunction with tight" false
    (Ecdar.refines_conjunction ~impl:mid ~specs:[ loose; tight ])

let () =
  Alcotest.run "ecdar"
    [
      ( "refinement",
        [
          Alcotest.test_case "tighter refines looser" `Quick test_refines_tighter;
          Alcotest.test_case "reflexive" `Quick test_refines_reflexive;
          Alcotest.test_case "input contravariance" `Quick test_input_contravariance;
          Alcotest.test_case "alphabet mismatch" `Quick test_alphabet_mismatch;
        ] );
      ("consistency", [ Alcotest.test_case "timelock" `Quick test_consistency ]);
      ( "composition",
        [
          Alcotest.test_case "structural" `Quick test_compose;
          Alcotest.test_case "shared outputs" `Quick test_compose_rejects_shared_outputs;
          Alcotest.test_case "conjunction" `Quick test_conjunction;
        ] );
    ]
