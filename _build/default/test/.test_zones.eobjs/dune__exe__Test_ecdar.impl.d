test/test_ecdar.ml: Alcotest Ecdar List Ta
