test/test_smc.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random Smc Ta
