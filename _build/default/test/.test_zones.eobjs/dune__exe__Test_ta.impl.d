test/test_ta.ml: Alcotest Array Astring List Printf QCheck QCheck_alcotest Random String Ta Zones
