test/test_mdp.ml: Alcotest Array List Mdp Printf QCheck QCheck_alcotest Random
