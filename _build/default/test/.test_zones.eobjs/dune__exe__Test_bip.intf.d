test/test_bip.mli:
