test/test_mbt.mli:
