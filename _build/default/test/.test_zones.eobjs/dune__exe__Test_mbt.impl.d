test/test_mbt.ml: Alcotest Astring List Mbt
