test/test_modest.ml: Alcotest Array Astring List Modest Smc String Ta
