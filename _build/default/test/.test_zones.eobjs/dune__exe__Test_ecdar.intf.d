test/test_ecdar.mli:
