test/test_modest.mli:
