test/test_util.ml: Alcotest Array List Printf QCheck QCheck_alcotest Quant_util Random String
