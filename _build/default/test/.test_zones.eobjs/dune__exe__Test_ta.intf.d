test/test_ta.mli:
