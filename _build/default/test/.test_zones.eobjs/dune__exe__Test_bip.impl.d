test/test_bip.ml: Alcotest Array Astring Bip Filename Hashtbl List Printf Random String Sys Unix
