test/test_zones.ml: Alcotest Array Astring List Printf QCheck QCheck_alcotest Random String Zones
