test/test_discrete.ml: Alcotest Array Discrete Games Hashtbl List Priced Printf QCheck QCheck_alcotest Random Ta
