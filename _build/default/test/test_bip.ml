(* Tests for the BIP layer: components, connectors (rendezvous +
   broadcast with maximal progress), priorities, the engine, D-Finder's
   compositional deadlock proof, code generation, and the DALA rover
   case study with fault injection (Section IV). *)

module Component = Bip.Component
module System = Bip.System
module Engine = Bip.Engine
module Dfinder = Bip.Dfinder
module Codegen = Bip.Codegen
module Dala = Bip.Dala

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A two-state toggler offering [go]. *)
let toggler ?(guarded = false) name =
  let b = Component.create name in
  let a = Component.add_location b "A" in
  let c = Component.add_location b "B" in
  let p = Component.add_port b "go" in
  let v = Component.add_var b "count" in
  Component.set_initial b a;
  let guard = if guarded then Some (fun s -> s.(v) < 2) else None in
  Component.add_transition b ~src:a ~dst:c ~port:p ?guard
    ~update:(fun s -> s.(v) <- min (s.(v) + 1) 3)
    ();
  Component.add_transition b ~src:c ~dst:a ~port:p ();
  (Component.build b, p)

let test_component_basics () =
  let c, p = toggler "T" in
  check "port enabled initially" true
    (Component.port_enabled c ~loc:0 ~store:[| 0 |] p.Component.port_id);
  let cg, pg = toggler ~guarded:true "TG" in
  check "guard blocks" false
    (Component.port_enabled cg ~loc:0 ~store:[| 5 |] pg.Component.port_id);
  check "guard allows" true
    (Component.port_enabled cg ~loc:0 ~store:[| 1 |] pg.Component.port_id)

(* Rendezvous: two togglers locked together. *)
let rendezvous_pair () =
  let c1, p1 = toggler "P" in
  let c2, p2 = toggler "Q" in
  System.make
    ~components:[| c1; c2 |]
    ~connectors:
      [
        System.Rendezvous
          {
            c_name = "sync";
            members = [ (0, p1); (1, p2) ];
            guard = None;
            action = None;
          };
      ]
    ()

let test_rendezvous () =
  let sys = rendezvous_pair () in
  let r = Engine.reachable sys in
  (* Lockstep: components are always in equal locations -> 2 loc combos;
     counters equal and bounded? counters grow unboundedly... they do!
     count increments on every A->B. So cap exploration. *)
  ignore r;
  let trace = Engine.run sys Engine.First ~steps:4 in
  check_int "four steps" 4 (List.length trace);
  List.iter
    (fun (_, st) ->
      check "lockstep" true (st.Engine.locs.(0) = st.Engine.locs.(1)))
    trace

let test_rendezvous_blocks () =
  (* One side guarded off: the interaction is disabled for both. *)
  let c1, p1 = toggler "P" in
  let c2, p2 = toggler ~guarded:true "Q" in
  let sys =
    System.make
      ~components:[| c1; c2 |]
      ~connectors:
        [
          System.Rendezvous
            {
              c_name = "sync";
              members = [ (0, p1); (1, p2) ];
              guard = None;
              action = None;
            };
        ]
      ()
  in
  (* After two full toggles Q's guard (count < 2) blocks -> deadlock. *)
  let free, witness = Engine.deadlock_free sys in
  check "guarded rendezvous deadlocks" false free;
  check "witness produced" true (witness <> None)

(* Broadcast with maximal progress: the trigger takes every enabled
   synchron along. *)
let test_broadcast_maximal () =
  let mk name =
    let b = Component.create name in
    let a = Component.add_location b "A" in
    let d = Component.add_location b "Done" in
    let p = Component.add_port b "p" in
    Component.set_initial b a;
    Component.add_transition b ~src:a ~dst:d ~port:p ();
    (Component.build b, p)
  in
  let t, pt = mk "Trig" in
  let s1, ps1 = mk "S1" in
  let s2, ps2 = mk "S2" in
  let sys =
    System.make
      ~components:[| t; s1; s2 |]
      ~connectors:
        [
          System.Broadcast
            {
              c_name = "bcast";
              trigger = (0, pt);
              synchrons = [ (1, ps1); (2, ps2) ];
              action = None;
            };
        ]
      ()
  in
  (* 4 interactions generated: trigger alone, +S1, +S2, +S1+S2. *)
  check_int "subset interactions" 4 (Array.length sys.System.interactions);
  let st = Engine.initial sys in
  let f = Engine.filtered sys st in
  check_int "only maximal fires" 1 (List.length f);
  (match f with
   | [ i ] -> check_int "all three participate" 3 (List.length i.System.i_ports)
   | _ -> Alcotest.fail "expected one interaction");
  (* Fire it: everyone moves. *)
  match Engine.step sys Engine.First st with
  | Some (_, st') ->
    check "all moved" true (Array.for_all (fun l -> l = 1) st'.Engine.locs)
  | None -> Alcotest.fail "broadcast did not fire"

let test_priority () =
  let c1, p1 = toggler "P" in
  let c2, p2 = toggler "Q" in
  let sys =
    System.make
      ~components:[| c1; c2 |]
      ~connectors:
        [
          System.Rendezvous
            { c_name = "a"; members = [ (0, p1) ]; guard = None; action = None };
          System.Rendezvous
            { c_name = "b"; members = [ (1, p2) ]; guard = None; action = None };
        ]
      ~priorities:[ { System.low = "a"; high = "b"; when_ = None } ]
      ()
  in
  let st = Engine.initial sys in
  check_int "both enabled" 2 (List.length (Engine.enabled sys st));
  match Engine.filtered sys st with
  | [ i ] -> check "b wins" true (String.equal i.System.i_name "b")
  | _ -> Alcotest.fail "priority did not filter"

(* ------------------------------------------------------------------ *)
(* D-Finder                                                            *)
(* ------------------------------------------------------------------ *)

(* A two-process token ring: always one token -> deadlock-free, and the
   trap analysis proves it compositionally. *)
let token_ring () =
  let mk name has_token =
    let b = Component.create name in
    let with_t = Component.add_location b "Token" in
    let without = Component.add_location b "NoToken" in
    let give = Component.add_port b "give" in
    let take = Component.add_port b "take" in
    Component.set_initial b (if has_token then with_t else without);
    Component.add_transition b ~src:with_t ~dst:without ~port:give ();
    Component.add_transition b ~src:without ~dst:with_t ~port:take ();
    (Component.build b, give, take)
  in
  let c1, g1, t1 = mk "R1" true in
  let c2, g2, t2 = mk "R2" false in
  System.make
    ~components:[| c1; c2 |]
    ~connectors:
      [
        System.Rendezvous
          { c_name = "pass12"; members = [ (0, g1); (1, t2) ]; guard = None; action = None };
        System.Rendezvous
          { c_name = "pass21"; members = [ (1, g2); (0, t1) ]; guard = None; action = None };
      ]
    ()

let test_dfinder_proves_ring () =
  let sys = token_ring () in
  let report = Dfinder.prove sys in
  check "compositional proof" true (report.Dfinder.verdict = Dfinder.Proved);
  check "traps found" true (report.Dfinder.n_traps >= 1);
  (* Exact agrees. *)
  check "exact agrees" true (fst (Engine.deadlock_free sys))

let test_dfinder_fallback () =
  (* The guarded rendezvous system really deadlocks: compositional is
     inconclusive (guards ignored), the combined check lands on false. *)
  let c1, p1 = toggler "P" in
  let c2, p2 = toggler ~guarded:true "Q" in
  let sys =
    System.make
      ~components:[| c1; c2 |]
      ~connectors:
        [
          System.Rendezvous
            { c_name = "sync"; members = [ (0, p1); (1, p2) ]; guard = None; action = None };
        ]
      ()
  in
  let free, used_fallback = Dfinder.check sys in
  check "deadlock found" false free;
  check "needed the exact fallback" true used_fallback

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

let test_codegen () =
  let sys = token_ring () in
  let src = Codegen.to_ocaml ~module_comment:"token ring" sys in
  check "mentions interactions" true
    (Astring.String.is_infix ~affix:"pass12" src
     && Astring.String.is_infix ~affix:"pass21" src);
  check_int "interaction table size" 2 (Codegen.interaction_count_in_source src);
  check "has engine loop" true (Astring.String.is_infix ~affix:"let run steps" src)

let test_codegen_compiles () =
  (* Best effort: compile the generated module when a compiler is
     available in the environment. *)
  let sys = token_ring () in
  let src = Codegen.to_ocaml sys in
  let dir = Filename.temp_file "bipgen" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let file = Filename.concat dir "bip_generated.ml" in
  let oc = open_out file in
  output_string oc src;
  close_out oc;
  let cmd =
    Printf.sprintf "cd %s && ocamlfind ocamlc -package unix bip_generated.ml 2>/dev/null"
      (Filename.quote dir)
  in
  match Sys.command cmd with
  | 0 -> ()
  | _ -> (
      (* Fall back to plain ocamlc; skip silently if unavailable. *)
      let cmd2 =
        Printf.sprintf "cd %s && ocamlc bip_generated.ml 2>&1" (Filename.quote dir)
      in
      match Sys.command cmd2 with
      | 0 -> ()
      | _ -> Alcotest.fail "generated code does not compile")


let test_codegen_dala_scale () =
  let d = Dala.make ~controlled:true () in
  let src = Codegen.to_ocaml d.Dala.sys in
  check "all DALA interactions in the table" true
    (Codegen.interaction_count_in_source src
     = Array.length d.Dala.sys.System.interactions);
  check "substantial module" true
    (List.length (String.split_on_char '\n' src) > 150)

let test_engine_first_deterministic () =
  let d = Dala.make ~modules:[ "RFLEX"; "NDD"; "POM" ] ~controlled:true () in
  let t1 = List.map fst (Engine.run d.Dala.sys Engine.First ~steps:30) in
  let t2 = List.map fst (Engine.run d.Dala.sys Engine.First ~steps:30) in
  check "First scheduler is deterministic" true (t1 = t2);
  check "trace is nonempty" true (t1 <> [])

(* ------------------------------------------------------------------ *)
(* DALA                                                                *)
(* ------------------------------------------------------------------ *)

let small_modules = [ "RFLEX"; "NDD"; "POM"; "Battery"; "Science" ]

let test_dala_controlled_safe () =
  let d = Dala.make ~modules:small_modules ~controlled:true () in
  let ok, witness = Engine.invariant_holds d.Dala.sys (Dala.safety_ok d) in
  check "safety invariant holds" true ok;
  check "no witness" true (witness = None)

let test_dala_uncontrolled_unsafe () =
  let d = Dala.make ~modules:small_modules ~controlled:false () in
  let ok, witness = Engine.invariant_holds d.Dala.sys (Dala.safety_ok d) in
  check "baseline violates safety" false ok;
  check "witness produced" true (witness <> None)

let test_dala_deadlock_free () =
  let d = Dala.make ~modules:small_modules ~controlled:true () in
  let report = Dfinder.prove d.Dala.sys in
  check "D-Finder proves DALA deadlock-free" true
    (report.Dfinder.verdict = Dfinder.Proved)

let test_dala_fault_injection () =
  let controlled = Dala.make ~controlled:true () in
  let r = Dala.inject_faults controlled ~runs:20 ~steps:200 ~seed:7 in
  check "faults were injected" true (r.Dala.faults_injected > 0);
  check_int "controller prevents violations" 0 r.Dala.violations;
  let baseline = Dala.make ~controlled:false () in
  let r0 = Dala.inject_faults baseline ~runs:20 ~steps:200 ~seed:7 in
  check "baseline violates" true (r0.Dala.violations > 0)

let test_dala_full_run () =
  let d = Dala.make ~controlled:true () in
  let trace = Engine.run d.Dala.sys (Engine.Random (Random.State.make [| 3 |])) ~steps:500 in
  check_int "engine sustains 500 steps" 500 (List.length trace);
  List.iter (fun (_, st) -> check "safe along run" true (Dala.safety_ok d st)) trace


(* ------------------------------------------------------------------ *)
(* Priority compilation (source-to-source transformation)              *)
(* ------------------------------------------------------------------ *)

module Transform = Bip.Transform

let states_set r =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (st : Engine.state) ->
      Hashtbl.replace tbl (st.Engine.locs, st.Engine.stores) ())
    r.Engine.states;
  tbl

let same_reachable a b =
  let sa = states_set (Engine.reachable a) in
  let sb = states_set (Engine.reachable b) in
  Hashtbl.length sa = Hashtbl.length sb
  && Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem sb k) sa true

let test_priority_compilation_equiv () =
  (* Priority example: after the transformation (no priority layer) the
     reachable states and deterministic traces coincide. *)
  let mk () =
    let c1, p1 = toggler "P" in
    let c2, p2 = toggler "Q" in
    System.make
      ~components:[| c1; c2 |]
      ~connectors:
        [
          System.Rendezvous
            { c_name = "a"; members = [ (0, p1) ]; guard = None; action = None };
          System.Rendezvous
            { c_name = "b"; members = [ (1, p2) ]; guard = None; action = None };
        ]
      ~priorities:[ { System.low = "a"; high = "b"; when_ = None } ]
      ()
  in
  let sys = mk () in
  let compiled = Transform.compile_priorities sys in
  check "no priorities left" true (compiled.System.priorities = []);
  check "reachable states agree" true (same_reachable sys compiled);
  let trace s = List.map fst (Engine.run s Engine.First ~steps:6) in
  check "deterministic traces agree" true (trace sys = trace compiled)

let test_priority_compilation_broadcast () =
  (* Maximal progress folds into guards the same way. *)
  let mk name =
    let b = Component.create name in
    let a = Component.add_location b "A" in
    let d = Component.add_location b "Done" in
    let p = Component.add_port b "p" in
    Component.set_initial b a;
    Component.add_transition b ~src:a ~dst:d ~port:p ();
    Component.add_transition b ~src:d ~dst:a ~port:p ();
    (Component.build b, p)
  in
  let t, pt = mk "Trig" in
  let s1, ps1 = mk "S1" in
  let sys =
    System.make
      ~components:[| t; s1 |]
      ~connectors:
        [
          System.Broadcast
            {
              c_name = "bc";
              trigger = (0, pt);
              synchrons = [ (1, ps1) ];
              action = None;
            };
        ]
      ()
  in
  let compiled = Transform.compile_priorities sys in
  check "reachable states agree (broadcast)" true (same_reachable sys compiled);
  (* In the initial state only the maximal interaction fires in both. *)
  let names s = List.map (fun (i : System.interaction) -> i.System.i_name)
      (Engine.filtered s (Engine.initial s)) in
  check "filtered sets agree" true (names sys = names compiled)

let test_priority_compilation_dala () =
  let d = Dala.make ~modules:[ "RFLEX"; "NDD"; "POM" ] ~controlled:true () in
  let compiled = Transform.compile_priorities d.Dala.sys in
  check "DALA subset equivalent after compilation" true
    (same_reachable d.Dala.sys compiled)

let () =
  Alcotest.run "bip"
    [
      ( "components",
        [ Alcotest.test_case "basics" `Quick test_component_basics ] );
      ( "glue",
        [
          Alcotest.test_case "rendezvous" `Quick test_rendezvous;
          Alcotest.test_case "rendezvous blocks" `Quick test_rendezvous_blocks;
          Alcotest.test_case "broadcast maximal" `Quick test_broadcast_maximal;
          Alcotest.test_case "priority" `Quick test_priority;
        ] );
      ( "dfinder",
        [
          Alcotest.test_case "proves ring" `Quick test_dfinder_proves_ring;
          Alcotest.test_case "fallback" `Quick test_dfinder_fallback;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "structure" `Quick test_codegen;
          Alcotest.test_case "compiles" `Slow test_codegen_compiles;
          Alcotest.test_case "dala scale" `Quick test_codegen_dala_scale;
          Alcotest.test_case "first deterministic" `Quick
            test_engine_first_deterministic;
        ] );
      ( "transform",
        [
          Alcotest.test_case "priority compilation" `Quick
            test_priority_compilation_equiv;
          Alcotest.test_case "broadcast compilation" `Quick
            test_priority_compilation_broadcast;
          Alcotest.test_case "dala compilation" `Quick
            test_priority_compilation_dala;
        ] );
      ( "dala",
        [
          Alcotest.test_case "controlled safe" `Slow test_dala_controlled_safe;
          Alcotest.test_case "uncontrolled unsafe" `Quick test_dala_uncontrolled_unsafe;
          Alcotest.test_case "deadlock-free" `Quick test_dala_deadlock_free;
          Alcotest.test_case "fault injection" `Slow test_dala_fault_injection;
          Alcotest.test_case "long run" `Slow test_dala_full_run;
        ] );
    ]
