(* Tests for the MODEST layer: STA construction and classification, the
   parser (Fig. 5 compiles verbatim), the three backends cross-validated
   against each other and closed-form values, and the BRP Table I
   reproduction. *)

module Sta = Modest.Sta
module Ast = Modest.Ast
module Parser = Modest.Parser
module Mprop = Modest.Mprop
module Mctau = Modest.Mctau
module Mcpta = Modest.Mcpta
module Modes = Modest.Modes
module Brp = Modest.Brp
module Lexer = Modest.Lexer
module Model = Ta.Model
module Expr = Ta.Expr
module Store = Ta.Store

let check = Alcotest.(check bool)

let close ?(tol = 1e-9) a b = abs_float (a -. b) <= tol

(* ------------------------------------------------------------------ *)
(* STA builder & classification                                        *)
(* ------------------------------------------------------------------ *)

(* A one-shot lossy sender: s --send--> (0.7 done | 0.3 lost). *)
let lossy_sta () =
  let b = Sta.builder () in
  let sb = Sta.store b in
  let got = Store.int_var sb "got" in
  let p = Sta.process b "P" in
  let s0 = Sta.location p "s0" in
  let s_done = Sta.location p "done" in
  let s_lost = Sta.location p "lost" in
  Sta.edge p ~src:s0
    ~branches:
      [
        (7, [ Model.Assign (Expr.Cell got, Expr.Int 1) ], s_done);
        (3, [], s_lost);
      ]
    ();
  Sta.build b

let test_classify () =
  let sta = lossy_sta () in
  check "no clocks -> MDP" true (Sta.classify sta = Sta.Class_mdp);
  let t = Brp.make ~n:2 () in
  check "BRP is a PTA" true (Sta.classify t.Brp.sta = Sta.Class_pta);
  (* Deterministic weights -> TA. *)
  let b = Sta.builder () in
  let x = Sta.fresh_clock b "x" in
  let p = Sta.process b "P" in
  let a = Sta.location p "a" in
  let c = Sta.location p "c" in
  Sta.edge p ~src:a ~clock_guard:[ Model.clock_ge x 1 ]
    ~branches:[ (1, [], c) ] ();
  check "single branches -> TA" true (Sta.classify (Sta.build b) = Sta.Class_ta)

let test_mcpta_simple_prob () =
  let sta = lossy_sta () in
  let p_done = Mprop.P_loc ("P", "done") in
  let v, _ = Mcpta.reach_prob sta p_done ~maximize:true in
  check "P(done) = 0.7" true (close v 0.7);
  (* The minimizing scheduler can idle forever (delay self-loop), so the
     minimum reachability probability is 0 — a classic MDP subtlety. *)
  let v_min, _ = Mcpta.reach_prob sta p_done ~maximize:false in
  check "min scheduler idles" true (close v_min 0.0)

let test_mctau_overapprox () =
  let sta = lossy_sta () in
  let bounds p = fst (Mctau.prob_bounds sta p) in
  check "reachable -> [0,1]" true
    (bounds (Mprop.P_loc ("P", "done")) = `Interval (0.0, 1.0));
  check "unreachable -> zero" true
    (bounds
       (Mprop.P_and
          (Mprop.P_loc ("P", "done"), Mprop.P_loc ("P", "lost")))
     = `Zero);
  check "invariant exact" true
    (fst
       (Mctau.invariant_holds sta
          (Mprop.P_not (Mprop.P_and (Mprop.P_loc ("P", "done"),
                                     Mprop.P_data (Expr.Eq (Expr.var (Store.find sta.Sta.layout "got"), Expr.Int 0)))))))

(* Two sequential coin flips: P(2 heads) = 0.25; checks branch products
   and expected steps. *)
let test_two_flips () =
  let b = Sta.builder () in
  let sb = Sta.store b in
  let heads = Store.int_var sb "heads" in
  let p = Sta.process b "P" in
  let s0 = Sta.location p "s0" in
  let s1 = Sta.location p "s1" in
  let s2 = Sta.location p "s2" in
  let inc = Model.Assign (Expr.Cell heads, Expr.Add (Expr.var heads, Expr.Int 1)) in
  Sta.edge p ~src:s0 ~branches:[ (1, [ inc ], s1); (1, [], s1) ] ();
  Sta.edge p ~src:s1 ~branches:[ (1, [ inc ], s2); (1, [], s2) ] ();
  let sta = Sta.build b in
  let two_heads =
    Mprop.P_and
      (Mprop.P_loc ("P", "s2"), Mprop.P_data (Expr.Eq (Expr.var heads, Expr.Int 2)))
  in
  let v, _ = Mcpta.reach_prob sta two_heads ~maximize:true in
  check "P(HH) = 1/4" true (close v 0.25)

(* ------------------------------------------------------------------ *)
(* Timed PTA: expected time and time-bounded reachability              *)
(* ------------------------------------------------------------------ *)

(* Wait exactly 3, then flip: 0.5 done / 0.5 retry (wait 3 again). The
   expected completion time is 3 * E[geometric(1/2)] = 6. *)
let retry_sta () =
  let b = Sta.builder () in
  let x = Sta.fresh_clock b "x" in
  let p = Sta.process b "P" in
  let s0 = Sta.location p ~invariant:[ Model.clock_le x 3 ] "s0" in
  let s_done = Sta.location p "done" in
  Sta.edge p ~src:s0
    ~clock_guard:[ Model.clock_ge x 3 ]
    ~branches:[ (1, [], s_done); (1, [ Model.Reset (x, 0) ], s0) ]
    ();
  Sta.build b

let test_expected_time () =
  let sta = retry_sta () in
  let v, _ = Mcpta.expected_time sta (Mprop.P_loc ("P", "done")) ~maximize:true in
  check "E[time] = 6" true (close ~tol:1e-6 v 6.0)

let test_time_bounded () =
  let sta = retry_sta () in
  let p_done = Mprop.P_loc ("P", "done") in
  let v3, _ = Mcpta.time_bounded_reach sta p_done ~bound:3 ~maximize:true in
  check "P(done within 3) = 1/2" true (close v3 0.5);
  let v6, _ = Mcpta.time_bounded_reach sta p_done ~bound:6 ~maximize:true in
  check "P(done within 6) = 3/4" true (close v6 0.75);
  let v2, _ = Mcpta.time_bounded_reach sta p_done ~bound:2 ~maximize:true in
  check "P(done within 2) = 0" true (close v2 0.0)

let test_modes_agrees () =
  let sta = retry_sta () in
  let obs =
    Modes.runs sta ~seed:11 ~n:2000 ~horizon:200.0
      ~watch:[| Mprop.P_loc ("P", "done") |]
      ~monitors:[||]
  in
  let times =
    Array.map
      (fun (o : Modes.observation) ->
        match o.Modes.hits.(0) with Some t -> t | None -> nan)
      obs
  in
  check "all runs complete" true (Array.for_all (fun t -> t = t) times);
  let mean, _ = Smc.Estimate.mean_std times in
  check "simulated mean near 6" true (abs_float (mean -. 6.0) < 0.3)

(* ------------------------------------------------------------------ *)
(* Parser: Fig. 5 and friends                                          *)
(* ------------------------------------------------------------------ *)

let fig5_model =
  {|
  const int TD = 1;
  int delivered = 0;

  // Fig. 5 of the paper, verbatim modulo the enclosing test harness.
  process Channel() {
    clock c;
    put palt {
    :98: {= c = 0 =};
         invariant(c <= TD) get
    : 2: {==} // message lost
    }; Channel()
  }

  process Sender() {
    put; Sender()
  }

  process Receiver() {
    get; {= delivered = 1 =}; Receiver()
  }

  par { Sender() || Channel() || Receiver() }
  |}

let test_fig5_parses () =
  let sta = Parser.parse_and_compile fig5_model in
  check "three processes" true (Array.length sta.Sta.processes = 3);
  check "classified PTA" true (Sta.classify sta = Sta.Class_pta);
  (* The channel's palt has branches 98/2. *)
  let chan = sta.Sta.processes.(Sta.proc_index sta "Channel") in
  let palt_edges =
    Array.to_list chan.Sta.p_out |> List.concat
    |> List.filter (fun (e : Sta.edge) -> List.length e.Sta.e_branches = 2)
  in
  check "one probabilistic edge" true (List.length palt_edges = 1)

(* Same channel, but the sender transmits a single message: the delivery
   probability is exactly the channel's 98%. *)
let fig5_once_model =
  {|
  const int TD = 1;
  int delivered = 0;
  process Channel() {
    clock c;
    put palt {
    :98: {= c = 0 =};
         invariant(c <= TD) get
    : 2: {==}
    }; Channel()
  }
  process Sender() { put; stop }
  process Receiver() { get; {= delivered = 1 =}; Receiver() }
  par { Sender() || Channel() || Receiver() }
  |}

let test_fig5_delivery_prob () =
  let sta = Parser.parse_and_compile fig5_model in
  let delivered sta =
    Mprop.P_data
      (Expr.Ge (Expr.var (Store.find sta.Sta.layout "delivered"), Expr.Int 1))
  in
  (* The sender retries forever, so delivery eventually happens a.s. *)
  let v, _ = Mcpta.reach_prob sta (delivered sta) ~maximize:true in
  check "delivery a.s." true (close ~tol:1e-6 v 1.0);
  (* A single-shot sender delivers with the channel's probability. *)
  let sta1 = Parser.parse_and_compile fig5_once_model in
  let v1, _ = Mcpta.reach_prob sta1 (delivered sta1) ~maximize:true in
  check "single-shot delivery = 0.98" true (close ~tol:1e-6 v1 0.98)

let test_parser_errors () =
  (try
     ignore (Parser.parse "process P() { when }");
     Alcotest.fail "expected parse error"
   with Parser.Parse_error _ -> ());
  (try
     ignore (Parser.parse_and_compile "process P() { undeclared_action_with_bad; P() } par { P() } int x = ;");
     Alcotest.fail "expected parse error"
   with Parser.Parse_error _ | Lexer.Lex_error _ -> ());
  try
    ignore (Parser.parse_and_compile "process P() { P() } par { P() }");
    Alcotest.fail "expected compile error (actionless recursion)"
  with Ast.Compile_error _ -> ()

let test_lexer () =
  let toks = Lexer.tokenize "x <= 10 // comment\n {= y = 1 =}" in
  let kinds = List.map fst toks in
  check "lexes" true
    (kinds
     = [
         Lexer.IDENT "x"; Lexer.PUNCT "<="; Lexer.INT 10; Lexer.PUNCT "{=";
         Lexer.IDENT "y"; Lexer.PUNCT "="; Lexer.INT 1; Lexer.PUNCT "=}";
         Lexer.EOF;
       ])

(* ------------------------------------------------------------------ *)
(* BRP / Table I                                                       *)
(* ------------------------------------------------------------------ *)

let test_brp_small_exact () =
  (* N=1, MAX=1: per-attempt failure q = 1 - 0.98*0.99 = 0.0298;
     P1 = q^2 (both attempts fail). *)
  let t = Brp.make ~n:1 ~max_retrans:1 () in
  let q = 1.0 -. (0.98 *. 0.99) in
  let v, _ = Mcpta.reach_prob t.Brp.sta (Brp.p1 t) ~maximize:true in
  check "P1 = q^2" true (close ~tol:1e-9 v (q *. q));
  (* With one chunk a failure is always on the last chunk: P2 = P1. *)
  let v2, _ = Mcpta.reach_prob t.Brp.sta (Brp.p2 t) ~maximize:true in
  check "P2 = P1 for N=1" true (close ~tol:1e-9 v2 (q *. q))

let test_brp_table1_mcpta () =
  let t = Brp.make () in
  let row = Brp.run_mcpta t in
  check "TA1" true row.Brp.mc_ta1;
  check "TA2" true row.Brp.mc_ta2;
  check "PA = 0" true (close row.Brp.mc_pa 0.0);
  check "PB = 0" true (close row.Brp.mc_pb 0.0);
  (* Paper: 4.233e-4, 2.645e-5, 0.9996, 33.473. *)
  check "P1 matches paper" true (close ~tol:2e-6 row.Brp.mc_p1 4.233e-4);
  check "P2 matches paper" true (close ~tol:2e-7 row.Brp.mc_p2 2.645e-5);
  check "Dmax matches paper" true (abs_float (row.Brp.mc_dmax -. 0.9996) < 5e-4);
  check "Emax matches paper" true (abs_float (row.Brp.mc_emax -. 33.473) < 0.1)

let test_brp_table1_mctau () =
  let t = Brp.make () in
  let row = Brp.run_mctau t in
  check "TA1 true" true row.Brp.mt_ta1;
  check "TA2 true" true row.Brp.mt_ta2;
  check "PA zero" true (row.Brp.mt_pa = `Zero);
  check "PB zero" true (row.Brp.mt_pb = `Zero);
  check "P1 unknown" true (row.Brp.mt_p1 = `Interval (0.0, 1.0));
  check "P2 unknown" true (row.Brp.mt_p2 = `Interval (0.0, 1.0));
  check "Dmax unknown" true (row.Brp.mt_dmax = `Interval (0.0, 1.0))

let test_brp_table1_modes () =
  let t = Brp.make () in
  let row = Brp.run_modes ~runs:1000 t in
  check "all runs satisfy TA1" true (row.Brp.md_ta1_ok = row.Brp.md_runs);
  check "all runs satisfy TA2" true (row.Brp.md_ta2_ok = row.Brp.md_runs);
  check "no PA observations" true (row.Brp.md_pa_obs = 0);
  check "no PB observations" true (row.Brp.md_pb_obs = 0);
  check "P1 rare" true (row.Brp.md_p1_obs <= 5);
  check "Dmax near all runs" true
    (row.Brp.md_dmax_obs >= row.Brp.md_runs - 10);
  check "Emax mean near 33.5" true (abs_float (row.Brp.md_emax_mean -. 33.47) < 0.5);
  check "Emax std near 2.1" true (abs_float (row.Brp.md_emax_std -. 2.14) < 0.8)

let test_brp_scaling () =
  (* Larger MAX lowers the failure probability. *)
  let p1_of max_retrans =
    let t = Brp.make ~n:4 ~max_retrans () in
    fst (Mcpta.reach_prob t.Brp.sta (Brp.p1 t) ~maximize:true)
  in
  let p1_1 = p1_of 1 and p1_3 = p1_of 3 in
  check "more retries, fewer failures" true (p1_3 < p1_1 /. 100.0)




let test_do_loop () =
  (* do-loop version of the Fig. 5 recursion: same shape, same class. *)
  let src = {|
  const int TD = 1;
  int delivered = 0;
  process Channel() {
    clock c;
    do {
      put palt {
      :98: {= c = 0 =};
           invariant(c <= TD) get
      : 2: {==}
      }
    }
  }
  process Sender() { do { put } }
  process Receiver() { do { get; {= delivered = 1 =} } }
  par { Sender() || Channel() || Receiver() }
  |} in
  let sta = Parser.parse_and_compile src in
  check "do-loop compiles" true (Sta.classify sta = Sta.Class_pta);
  let delivered =
    Mprop.P_data
      (Expr.Ge (Expr.var (Store.find sta.Sta.layout "delivered"), Expr.Int 1))
  in
  let v, _ = Mcpta.reach_prob sta delivered ~maximize:true in
  check "delivery a.s. through do-loops" true (close ~tol:1e-6 v 1.0)


let test_lexer_comments () =
  let toks = Lexer.tokenize "a /* multi\nline */ b // tail\n c" in
  let idents = List.filter_map (function Lexer.IDENT s, _ -> Some s | _ -> None)
      (List.map (fun (t, l) -> (t, l)) toks) in
  check "comments skipped" true (idents = [ "a"; "b"; "c" ]);
  (try
     ignore (Lexer.tokenize "a /* unterminated");
     Alcotest.fail "expected lex error"
   with Lexer.Lex_error _ -> ());
  try
    ignore (Lexer.tokenize "a $ b");
    Alcotest.fail "expected bad char"
  with Lexer.Lex_error _ -> ()

let test_alt_parses () =
  let src = {|
  int choice = 0;
  process P() {
    alt {
    :: a; {= choice = 1 =}
    :: b; {= choice = 2 =}
    }; stop
  }
  par { P() }
  |} in
  let sta = Parser.parse_and_compile src in
  (* Both alternatives are reachable (nondeterministic choice). *)
  let chose k =
    Mprop.P_data (Expr.Eq (Expr.var (Store.find sta.Sta.layout "choice"), Expr.Int k))
  in
  let v1, _ = Mcpta.reach_prob sta (chose 1) ~maximize:true in
  let v2, _ = Mcpta.reach_prob sta (chose 2) ~maximize:true in
  check "alt branch a reachable" true (close ~tol:1e-9 v1 1.0);
  check "alt branch b reachable" true (close ~tol:1e-9 v2 1.0);
  (* But the minimizing scheduler avoids each. *)
  let v1min, _ = Mcpta.reach_prob sta (chose 1) ~maximize:false in
  check "alt is nondeterministic" true (close ~tol:1e-9 v1min 0.0)

let test_class_sta_rejected () =
  (* A strict clock guard puts the model outside PTA: mcpta refuses. *)
  let b = Sta.builder () in
  let x = Sta.fresh_clock b "x" in
  let p = Sta.process b "P" in
  let s0 = Sta.location p "s0" in
  let s1 = Sta.location p "s1" in
  Sta.edge p ~src:s0 ~clock_guard:[ Model.clock_gt x 1 ]
    ~branches:[ (1, [], s1); (1, [], s0) ] ();
  let sta = Sta.build b in
  check "classified STA" true (Sta.classify sta = Sta.Class_sta);
  try
    ignore (Modest.Digital_sta.expand sta);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()


let test_modes_monitor_violation () =
  (* A monitor that the model violates on every run is reported false. *)
  let t = Brp.make ~n:2 () in
  let impossible =
    Mprop.P_data (Expr.Lt (Expr.var (Store.find t.Brp.sta.Sta.layout "i"), Expr.Int 1))
  in
  let obs =
    Modes.runs t.Brp.sta ~seed:3 ~n:20 ~horizon:100.0 ~watch:[||]
      ~monitors:[| impossible |]
  in
  check "violated monitor detected in every run" true
    (Array.for_all (fun (o : Modes.observation) -> not o.Modes.monitors_ok.(0)) obs)

(* ------------------------------------------------------------------ *)
(* UPPAAL XML export (the mctau export path of Section III)            *)
(* ------------------------------------------------------------------ *)

module Uppaal_xml = Modest.Uppaal_xml

let test_xml_export_structure () =
  let xml = Uppaal_xml.of_network (Ta.Train_gate.make ~n_trains:2) in
  let has affix = Astring.String.is_infix ~affix xml in
  check "nta document" true (has "<nta>" && has "</nta>");
  check "declares clocks" true (has "clock x0;" && has "clock x1;");
  check "declares urgent channel" true (has "urgent chan go0;");
  check "declares the queue array" true (has "int list[3];");
  check "templates for all automata" true
    (has "<name>Train0</name>" && has "<name>Gate</name>");
  check "committed location marked" true (has "<committed/>");
  check "sync labels" true (has "appr0!" && has "appr0?");
  check "system line" true (has "system Train0, Train1, Gate;")

let test_xml_export_escapes () =
  (* Guards contain <= which must be escaped. *)
  let xml = Uppaal_xml.of_network (Ta.Train_gate.make ~n_trains:2) in
  check "no raw <= in labels" true
    (Astring.String.is_infix ~affix:"&lt;=" xml);
  check "well-formed: balanced templates" true
    (let count affix =
       List.length (String.split_on_char '\n' xml)
       |> fun _ ->
       let rec go i acc =
         match Astring.String.find_sub ~start:i ~sub:affix xml with
         | Some j -> go (j + 1) (acc + 1)
         | None -> acc
       in
       go 0 0
     in
     count "<template>" = count "</template>")

let test_xml_of_sta () =
  let t = Brp.make ~n:2 () in
  let xml = Uppaal_xml.of_sta t.Brp.sta in
  let has affix = Astring.String.is_infix ~affix xml in
  check "sta exports via mctau" true
    (has "<name>Sender</name>" && has "<name>ChannelK</name>");
  check "channels declared" true (has "chan put;")

(* ------------------------------------------------------------------ *)
(* Randomized contention resolution (backoff)                          *)
(* ------------------------------------------------------------------ *)

module Backoff = Modest.Backoff

let test_backoff_closed_forms () =
  let t = Backoff.make () in
  check "classified PTA" true (Sta.classify t.Backoff.sta = Sta.Class_pta);
  (* slots=2, round=2: success 1/2 per round. *)
  check "P(within 2) = 1/2" true (close ~tol:1e-9 (Backoff.success_within t ~bound:2) 0.5);
  check "P(within 4) = 3/4" true (close ~tol:1e-9 (Backoff.success_within t ~bound:4) 0.75);
  check "P(within 6) = 7/8" true (close ~tol:1e-9 (Backoff.success_within t ~bound:6) 0.875);
  check "E[time] = 4" true (close ~tol:1e-6 (Backoff.expected_resolution_time t) 4.0)

let test_backoff_more_slots () =
  (* slots=4: success per round = 3/4, expected rounds 4/3, E[time] = 8/3. *)
  let t = Backoff.make ~slots:4 () in
  check "P(within 2) = 3/4" true (close ~tol:1e-9 (Backoff.success_within t ~bound:2) 0.75);
  check "E[time] = 8/3" true
    (close ~tol:1e-6 (Backoff.expected_resolution_time t) (8.0 /. 3.0))

let test_backoff_modes_agrees () =
  let t = Backoff.make () in
  let mean, _ = Backoff.simulate_mean_time t ~runs:3000 ~seed:13 in
  check "simulated mean near 4" true (abs_float (mean -. 4.0) < 0.2)

let () =
  Alcotest.run "modest"
    [
      ( "sta",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "mcpta simple" `Quick test_mcpta_simple_prob;
          Alcotest.test_case "mctau overapprox" `Quick test_mctau_overapprox;
          Alcotest.test_case "two flips" `Quick test_two_flips;
        ] );
      ( "timed",
        [
          Alcotest.test_case "expected time" `Quick test_expected_time;
          Alcotest.test_case "time bounded" `Quick test_time_bounded;
          Alcotest.test_case "modes agrees" `Slow test_modes_agrees;
        ] );
      ( "parser",
        [
          Alcotest.test_case "lexer" `Quick test_lexer;
          Alcotest.test_case "fig5 parses" `Quick test_fig5_parses;
          Alcotest.test_case "fig5 delivery" `Quick test_fig5_delivery_prob;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "do loop" `Quick test_do_loop;
          Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
          Alcotest.test_case "alt" `Quick test_alt_parses;
          Alcotest.test_case "sta rejected by mcpta" `Quick test_class_sta_rejected;
        ] );
      ( "modes",
        [ Alcotest.test_case "monitor violation" `Quick test_modes_monitor_violation ] );
      ( "uppaal-xml",
        [
          Alcotest.test_case "structure" `Quick test_xml_export_structure;
          Alcotest.test_case "escaping" `Quick test_xml_export_escapes;
          Alcotest.test_case "sta export" `Quick test_xml_of_sta;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "closed forms" `Quick test_backoff_closed_forms;
          Alcotest.test_case "more slots" `Quick test_backoff_more_slots;
          Alcotest.test_case "modes agrees" `Slow test_backoff_modes_agrees;
        ] );
      ( "brp",
        [
          Alcotest.test_case "small exact" `Quick test_brp_small_exact;
          Alcotest.test_case "table1 mcpta" `Slow test_brp_table1_mcpta;
          Alcotest.test_case "table1 mctau" `Slow test_brp_table1_mctau;
          Alcotest.test_case "table1 modes" `Slow test_brp_table1_modes;
          Alcotest.test_case "scaling" `Slow test_brp_scaling;
        ] );
    ]
