(* Tests for the MDP value-iteration engine (the mini-PRISM): closed-form
   chains, divergence detection, and qcheck properties over randomly
   generated MDPs. *)

let check = Alcotest.(check bool)

let close ?(tol = 1e-9) a b = abs_float (a -. b) <= tol

let act ?(reward = 0.0) label probs = { Mdp.a_label = label; probs; reward }

(* ------------------------------------------------------------------ *)
(* Closed forms                                                        *)
(* ------------------------------------------------------------------ *)

(* 0 --1--> 1 --1--> 2(goal): deterministic chain. *)
let test_chain () =
  let m =
    Mdp.make
      [|
        [ act "a" [ (1.0, 1) ] ~reward:2.0 ];
        [ act "b" [ (1.0, 2) ] ~reward:3.0 ];
        [];
      |]
  in
  let target = [| false; false; true |] in
  let v, _ = Mdp.reach_prob m ~target ~maximize:true in
  check "chain reaches" true (close v.(0) 1.0);
  let r, _ = Mdp.expected_reward m ~target ~maximize:true in
  check "reward sums" true (close r.(0) 5.0)

(* Geometric retry: success 1/3, retry 2/3 with reward 1 per attempt:
   E[attempts] = 3. *)
let test_geometric () =
  let m =
    Mdp.make
      [| [ act "try" [ (1.0 /. 3.0, 1); (2.0 /. 3.0, 0) ] ~reward:1.0 ]; [] |]
  in
  let target = [| false; true |] in
  let v, _ = Mdp.reach_prob m ~target ~maximize:true in
  check "a.s. success" true (close ~tol:1e-8 v.(0) 1.0);
  let r, _ = Mdp.expected_reward m ~target ~maximize:true in
  check "E[attempts] = 3" true (close ~tol:1e-6 r.(0) 3.0)

(* A choice between a safe 0.5 shot and a risky 0.9 shot: max picks
   0.9, min picks... both eventually reach via retries, so compare the
   step-bounded values instead. *)
let test_max_min () =
  let m =
    Mdp.make
      [|
        [
          act "safe" [ (0.5, 1); (0.5, 2) ];
          act "risky" [ (0.9, 1); (0.1, 2) ];
        ];
        [];
        [];
      |]
  in
  let target = [| false; true; false |] in
  let vmax, _ = Mdp.reach_prob m ~target ~maximize:true in
  let vmin, _ = Mdp.reach_prob m ~target ~maximize:false in
  check "max = 0.9" true (close vmax.(0) 0.9);
  check "min = 0.5" true (close vmin.(0) 0.5)

let test_bounded () =
  (* Two steps needed: bound 1 gives 0, bound 2 gives 1. *)
  let m =
    Mdp.make [| [ act "a" [ (1.0, 1) ] ]; [ act "b" [ (1.0, 2) ] ]; [] |]
  in
  let target = [| false; false; true |] in
  let v1 = Mdp.bounded_reach_prob m ~target ~steps:1 ~maximize:true in
  let v2 = Mdp.bounded_reach_prob m ~target ~steps:2 ~maximize:true in
  check "1 step: not yet" true (close v1.(0) 0.0);
  check "2 steps: there" true (close v2.(0) 1.0)

let test_divergence () =
  (* The maximizing scheduler can loop forever away from the goal while
     collecting reward: expected total reward is infinite. *)
  let m =
    Mdp.make
      [|
        [ act "loop" [ (1.0, 0) ] ~reward:1.0; act "go" [ (1.0, 1) ] ];
        [];
      |]
  in
  let target = [| false; true |] in
  let r, _ = Mdp.expected_reward m ~target ~maximize:true in
  check "max expected reward infinite" true (r.(0) = infinity);
  (* Minimizing goes straight: 0 reward. *)
  let rmin, _ = Mdp.expected_reward m ~target ~maximize:false in
  check "min expected reward 0" true (close rmin.(0) 0.0)

let test_validation () =
  (try
     ignore (Mdp.make [| [ act "bad" [ (0.5, 0) ] ] |]);
     Alcotest.fail "expected invalid distribution"
   with Invalid_argument _ -> ());
  try
    ignore (Mdp.make [| [ act "bad" [ (1.0, 7) ] ] |]);
    Alcotest.fail "expected bad successor"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Random MDP properties                                               *)
(* ------------------------------------------------------------------ *)

let random_mdp rng ~n_states ~n_actions =
  let actions =
    Array.init n_states (fun _ ->
        List.init
          (1 + Random.State.int rng n_actions)
          (fun k ->
            (* Two-successor distribution with a random split. *)
            let p = float_of_int (1 + Random.State.int rng 9) /. 10.0 in
            let s1 = Random.State.int rng n_states in
            let s2 = Random.State.int rng n_states in
            act (Printf.sprintf "a%d" k)
              [ (p, s1); (1.0 -. p, s2) ]
              ~reward:(float_of_int (Random.State.int rng 3))))
  in
  (* Last state absorbing goal. *)
  actions.(n_states - 1) <- [];
  Mdp.make actions

let mdp_arb =
  QCheck.make
    QCheck.Gen.(
      map
        (fun (seed, n, k) ->
          let rng = Random.State.make [| seed |] in
          (random_mdp rng ~n_states:n ~n_actions:k, n))
        (triple (int_bound 1_000_000) (int_range 2 8) (int_range 1 3)))
    ~print:(fun (_, n) -> Printf.sprintf "random mdp with %d states" n)

let target_last n = Array.init n (fun i -> i = n - 1)

let prop_probs_in_range =
  QCheck.Test.make ~name:"reach probabilities lie in [0,1]" ~count:200 mdp_arb
    (fun (m, n) ->
      let v, _ = Mdp.reach_prob m ~target:(target_last n) ~maximize:true in
      Array.for_all (fun p -> p >= -1e-9 && p <= 1.0 +. 1e-9) v)

let prop_max_ge_min =
  QCheck.Test.make ~name:"max reach >= min reach" ~count:200 mdp_arb
    (fun (m, n) ->
      let target = target_last n in
      let vmax, _ = Mdp.reach_prob m ~target ~maximize:true in
      let vmin, _ = Mdp.reach_prob m ~target ~maximize:false in
      Array.for_all2 (fun a b -> a +. 1e-9 >= b) vmax vmin)

let prop_bounded_monotone =
  QCheck.Test.make ~name:"bounded reach monotone in steps" ~count:200 mdp_arb
    (fun (m, n) ->
      let target = target_last n in
      let v5 = Mdp.bounded_reach_prob m ~target ~steps:5 ~maximize:true in
      let v10 = Mdp.bounded_reach_prob m ~target ~steps:10 ~maximize:true in
      Array.for_all2 (fun a b -> a <= b +. 1e-9) v5 v10)

let prop_bounded_below_unbounded =
  QCheck.Test.make ~name:"bounded reach <= unbounded reach" ~count:200 mdp_arb
    (fun (m, n) ->
      let target = target_last n in
      let vb = Mdp.bounded_reach_prob m ~target ~steps:20 ~maximize:true in
      let v, _ = Mdp.reach_prob m ~target ~maximize:true in
      Array.for_all2 (fun a b -> a <= b +. 1e-6) vb v)

let prop_sweeps_agree =
  QCheck.Test.make ~name:"Jacobi and Gauss-Seidel agree" ~count:200 mdp_arb
    (fun (m, n) ->
      let target = target_last n in
      let vj, _ = Mdp.reach_prob ~sweep:Mdp.Jacobi m ~target ~maximize:true in
      let vg, _ =
        Mdp.reach_prob ~sweep:Mdp.Gauss_seidel m ~target ~maximize:true
      in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-6) vj vg)

let prop_monte_carlo_agrees =
  (* For a DTMC (one action per state), the value-iteration answer must
     agree with straight simulation. *)
  QCheck.Test.make ~name:"DTMC reach prob matches Monte Carlo" ~count:25
    (QCheck.make
       QCheck.Gen.(
         map
           (fun (seed, n) ->
             let rng = Random.State.make [| seed |] in
             let m =
               Array.init n (fun i ->
                   if i = n - 1 then []
                   else begin
                     let p = float_of_int (1 + Random.State.int rng 9) /. 10.0 in
                     [ act "a" [ (p, Random.State.int rng n); (1.0 -. p, Random.State.int rng n) ] ]
                   end)
             in
             (Mdp.make m, n, seed))
           (pair (int_bound 1_000_000) (int_range 3 6)))
       ~print:(fun (_, n, seed) -> Printf.sprintf "dtmc n=%d seed=%d" n seed))
    (fun (m, n, seed) ->
      let target = target_last n in
      (* Compare bounded reachability against simulation truncated at the
         same horizon: the two quantities are identical in expectation,
         avoiding truncation bias on slow-mixing chains. *)
      let horizon = 500 in
      let v = Mdp.bounded_reach_prob m ~target ~steps:horizon ~maximize:true in
      let rng = Random.State.make [| seed; 99 |] in
      let runs = 4000 in
      let hits = ref 0 in
      for _ = 1 to runs do
        let rec walk s fuel =
          if s = n - 1 then incr hits
          else if fuel > 0 then begin
            match Mdp.actions m s with
            | [ a ] ->
              let roll = Random.State.float rng 1.0 in
              let rec pick acc = function
                | [] -> ()
                | (p, s') :: rest ->
                  if roll < acc +. p then walk s' (fuel - 1)
                  else pick (acc +. p) rest
              in
              pick 0.0 a.Mdp.probs
            | _ -> ()
          end
        in
        walk 0 horizon
      done;
      let estimate = float_of_int !hits /. float_of_int runs in
      abs_float (estimate -. v.(0)) < 0.05)

let () =
  let qtests =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_probs_in_range;
        prop_max_ge_min;
        prop_bounded_monotone;
        prop_bounded_below_unbounded;
        prop_sweeps_agree;
        prop_monte_carlo_agrees;
      ]
  in
  Alcotest.run "mdp"
    [
      ( "closed-forms",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "geometric" `Quick test_geometric;
          Alcotest.test_case "max/min" `Quick test_max_min;
          Alcotest.test_case "bounded" `Quick test_bounded;
          Alcotest.test_case "divergence" `Quick test_divergence;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ("properties", qtests);
    ]
